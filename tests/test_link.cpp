// Unit tests for the probabilistic link.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "dist/constant.hpp"
#include "dist/exponential.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace chenfd::net {
namespace {

using chenfd::Duration;
using chenfd::TimePoint;

Message make_message(SeqNo seq, TimePoint sent) {
  Message m;
  m.seq = seq;
  m.sent_real = sent;
  m.sender_timestamp = sent;
  return m;
}

TEST(Link, DeliversAfterSampledDelay) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(0.5),
            std::make_unique<BernoulliLoss>(0.0), Rng(1));
  std::vector<std::pair<SeqNo, double>> received;
  link.set_receiver([&](const Message& m, TimePoint at) {
    received.emplace_back(m.seq, at.seconds());
  });
  sim.at(TimePoint(1.0), [&] { link.send(make_message(1, sim.now())); });
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_DOUBLE_EQ(received[0].second, 1.5);
  EXPECT_EQ(link.sent_count(), 1u);
  EXPECT_EQ(link.delivered_count(), 1u);
  EXPECT_EQ(link.dropped_count(), 0u);
}

TEST(Link, SendWithoutReceiverThrows) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(0.5),
            std::make_unique<BernoulliLoss>(0.0), Rng(1));
  EXPECT_THROW(link.send(make_message(1, TimePoint::zero())),
               std::invalid_argument);
}

TEST(Link, DropsAtConfiguredRate) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(0.01),
            std::make_unique<BernoulliLoss>(0.25), Rng(7));
  int received = 0;
  link.set_receiver([&](const Message&, TimePoint) { ++received; });
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    link.send(make_message(static_cast<SeqNo>(i + 1), sim.now()));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(received) / kN, 0.75, 0.01);
  EXPECT_EQ(link.sent_count(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(link.dropped_count() + link.delivered_count(),
            static_cast<std::uint64_t>(kN));
}

TEST(Link, ExponentialDelaysCanReorder) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Exponential>(1.0),
            std::make_unique<BernoulliLoss>(0.0), Rng(11));
  std::vector<SeqNo> order;
  link.set_receiver([&](const Message& m, TimePoint) {
    order.push_back(m.seq);
  });
  // Send 200 messages 0.01s apart; with mean delay 1.0 reordering is
  // essentially certain.
  for (int i = 0; i < 200; ++i) {
    sim.at(TimePoint(0.01 * i), [&link, i, &sim] {
      link.send(make_message(static_cast<SeqNo>(i + 1), sim.now()));
    });
  }
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Link, DuplicationDeliversTwice) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(0.1),
            std::make_unique<BernoulliLoss>(0.0), Rng(13));
  link.set_duplication_probability(0.5);
  int received = 0;
  link.set_receiver([&](const Message&, TimePoint) { ++received; });
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    link.send(make_message(static_cast<SeqNo>(i + 1), sim.now()));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(received) / kN, 1.5, 0.02);
}

TEST(Link, SwappingDelayAffectsSubsequentSends) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(1.0),
            std::make_unique<BernoulliLoss>(0.0), Rng(17));
  std::vector<double> arrival;
  link.set_receiver([&](const Message&, TimePoint at) {
    arrival.push_back(at.seconds());
  });
  link.send(make_message(1, sim.now()));
  link.set_delay(std::make_unique<dist::Constant>(2.0));
  link.send(make_message(2, sim.now()));
  sim.run();
  ASSERT_EQ(arrival.size(), 2u);
  EXPECT_DOUBLE_EQ(arrival[0], 1.0);
  EXPECT_DOUBLE_EQ(arrival[1], 2.0);
}

TEST(Link, SwappingLossModel) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(0.1),
            std::make_unique<BernoulliLoss>(0.0), Rng(19));
  int received = 0;
  link.set_receiver([&](const Message&, TimePoint) { ++received; });
  link.send(make_message(1, sim.now()));
  // Losing everything from now on (p just under 1 to satisfy validation).
  link.set_loss(std::make_unique<BernoulliLoss>(0.999999999));
  for (int i = 0; i < 100; ++i) {
    link.send(make_message(static_cast<SeqNo>(i + 2), sim.now()));
  }
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Link, RejectsInvalidConfiguration) {
  sim::Simulator sim;
  EXPECT_THROW(Link(sim, nullptr, std::make_unique<BernoulliLoss>(0.0),
                    Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(Link(sim, std::make_unique<dist::Constant>(0.1), nullptr,
                    Rng(1)),
               std::invalid_argument);
  Link link(sim, std::make_unique<dist::Constant>(0.1),
            std::make_unique<BernoulliLoss>(0.0), Rng(1));
  EXPECT_THROW(link.set_duplication_probability(1.5), std::invalid_argument);
  EXPECT_THROW(link.set_duplication_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(link.set_delay(nullptr), std::invalid_argument);
  EXPECT_THROW(link.set_loss(nullptr), std::invalid_argument);
}

TEST(Link, HeartbeatStormDuplicatesEveryDelivery) {
  // p = 1 is the heartbeat-storm fault: every surviving message is
  // delivered exactly twice, each copy with its own delay draw.
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(0.1),
            std::make_unique<BernoulliLoss>(0.0), Rng(23));
  link.set_duplication_probability(1.0);
  int received = 0;
  link.set_receiver([&](const Message&, TimePoint) { ++received; });
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    link.send(make_message(static_cast<SeqNo>(i + 1), sim.now()));
  }
  sim.run();
  EXPECT_EQ(received, 2 * kN);
  EXPECT_EQ(link.delivered_count(), static_cast<std::uint64_t>(2 * kN));
}

TEST(Link, PartitionDropsEverySend) {
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(0.1),
            std::make_unique<BernoulliLoss>(0.0), Rng(29));
  int received = 0;
  link.set_receiver([&](const Message&, TimePoint) { ++received; });
  EXPECT_FALSE(link.partitioned());
  link.set_partitioned(true);
  EXPECT_TRUE(link.partitioned());
  for (int i = 0; i < 50; ++i) {
    link.send(make_message(static_cast<SeqNo>(i + 1), sim.now()));
  }
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link.partition_dropped_count(), 50u);
  EXPECT_EQ(link.dropped_count(), 50u);

  // Healing restores normal operation; the partition counter stays.
  link.set_partitioned(false);
  link.send(make_message(51, sim.now()));
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(link.partition_dropped_count(), 50u);
}

TEST(Link, PartitionDoesNotAdvanceLossState) {
  // The partition is an outage of the path, not part of the loss process:
  // a stateful loss model must see the same draw sequence whether or not a
  // partition interleaved extra sends.
  sim::Simulator sim;
  const auto make_ge = [] {
    // Deterministic state flip each message, loss only in Bad.
    return std::make_unique<GilbertElliottLoss>(1.0, 1.0, 0.0, 1.0);
  };
  Link with_partition(sim, std::make_unique<dist::Constant>(0.1), make_ge(),
                      Rng(31));
  Link without(sim, std::make_unique<dist::Constant>(0.1), make_ge(),
               Rng(31));
  std::vector<SeqNo> got_a;
  std::vector<SeqNo> got_b;
  with_partition.set_receiver(
      [&](const Message& m, TimePoint) { got_a.push_back(m.seq); });
  without.set_receiver(
      [&](const Message& m, TimePoint) { got_b.push_back(m.seq); });
  for (SeqNo i = 1; i <= 20; ++i) {
    if (i == 5) with_partition.set_partitioned(true);
    if (i == 10) with_partition.set_partitioned(false);
    with_partition.send(make_message(i, sim.now()));
    if (i < 5 || i >= 10) without.send(make_message(i, sim.now()));
  }
  sim.run();
  EXPECT_EQ(got_a, got_b);
}

TEST(Link, InFlightMessagesSurviveAPartition) {
  // Mirrors the Section 3.1 crash semantics: the fault does not affect
  // messages already on the wire.
  sim::Simulator sim;
  Link link(sim, std::make_unique<dist::Constant>(1.0),
            std::make_unique<BernoulliLoss>(0.0), Rng(37));
  int received = 0;
  link.set_receiver([&](const Message&, TimePoint) { ++received; });
  link.send(make_message(1, sim.now()));  // delivers at t = 1
  sim.at(TimePoint(0.5), [&] { link.set_partitioned(true); });
  sim.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace chenfd::net
