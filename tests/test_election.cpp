// Tests for the Omega-style elector (DESIGN.md section 12): the lowest-id
// trust rule, demotion hysteresis (doubling, cap, reset, incarnation
// amnesty), crash/recover gating, the warm-restore leader latch, and the
// leader-QoS metrics plus the FaultPlan ground-truth window queries they
// consume.

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <vector>

#include "election/elector.hpp"
#include "election/qos.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace chenfd::election {
namespace {

Elector::Options tight_options() {
  Elector::Options o;
  o.holddown_base = seconds(4.0);
  o.holddown_cap = seconds(16.0);
  o.holddown_reset = seconds(60.0);
  o.self_claim_delay = seconds(2.0);
  o.restore_grace = seconds(10.0);
  return o;
}

/// An elector under direct drive: events are injected at sim.now() so the
/// elector's internal reevaluation timers stay consistent.
struct Rig {
  sim::Simulator sim;
  Elector elector;

  explicit Rig(ProcessId self, std::size_t n = 3,
               Elector::Options opts = tight_options())
      : elector(sim, self, n, opts) {
    elector.activate();
  }

  void advance_to(double t) { sim.run_until(TimePoint(t)); }

  void trust(ProcessId peer) {
    elector.on_peer_transition(peer, Verdict::kTrust, sim.now());
  }
  void suspect(ProcessId peer) {
    elector.on_peer_transition(peer, Verdict::kSuspect, sim.now());
  }
};

TEST(Elector, SelfClaimIsGatedByDelay) {
  Rig rig(0);
  EXPECT_EQ(rig.elector.leader(), kNoLeader);
  rig.advance_to(1.9);
  EXPECT_EQ(rig.elector.leader(), kNoLeader);
  rig.advance_to(2.1);
  EXPECT_EQ(rig.elector.leader(), 0u);
  EXPECT_TRUE(rig.elector.self_claimed());
  ASSERT_EQ(rig.elector.trace().size(), 1u);
  EXPECT_EQ(rig.elector.trace().front().leader, 0u);
}

TEST(Elector, LowestTrustedIdWins) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(1);
  EXPECT_EQ(rig.elector.leader(), 1u);  // first trust, no holddown
  rig.trust(0);
  EXPECT_EQ(rig.elector.leader(), 0u);  // lower id preempts
  rig.suspect(0);
  EXPECT_EQ(rig.elector.leader(), 1u);  // falls back to next trusted
}

TEST(Elector, DemotionHolddownDelaysReinstatement) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(1);
  rig.trust(0);
  rig.suspect(0);  // demotion #1
  EXPECT_EQ(rig.elector.demotions(0), 1u);
  rig.advance_to(10.0);
  rig.trust(0);  // re-trust: held down for holddown_base = 4 s
  EXPECT_EQ(rig.elector.leader(), 1u);
  rig.advance_to(13.9);
  EXPECT_EQ(rig.elector.leader(), 1u);
  rig.advance_to(14.1);
  EXPECT_EQ(rig.elector.leader(), 0u);  // backoff served
}

TEST(Elector, HolddownDoublesAndIsCapped) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(1);
  // Flap process 0 repeatedly; each cycle serves its backoff, so the next
  // demotion increments the count (the gaps stay under holddown_reset).
  // After d demotions the holddown is base * 2^(d-1), capped at 16 s.
  const double expected_holddown[] = {0.0, 4.0, 8.0, 16.0, 16.0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    const double t = rig.sim.now().seconds();
    rig.trust(0);
    const double eligible_at = t + expected_holddown[cycle];
    if (cycle > 0) {
      rig.advance_to(eligible_at - 0.1);
      EXPECT_EQ(rig.elector.leader(), 1u) << "cycle " << cycle;
    }
    rig.advance_to(eligible_at + 0.1);
    EXPECT_EQ(rig.elector.leader(), 0u) << "cycle " << cycle;
    rig.suspect(0);
    EXPECT_EQ(rig.elector.demotions(0),
              static_cast<std::uint64_t>(cycle + 1));
  }
}

TEST(Elector, DemotionCountResetsAfterQuietStretch) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(1);
  rig.trust(0);
  rig.suspect(0);  // demotion #1 at t = 1
  rig.advance_to(5.0);
  rig.trust(0);
  rig.advance_to(10.0);  // backoff served, 0 leads again
  ASSERT_EQ(rig.elector.leader(), 0u);
  rig.advance_to(70.0);  // 65 s demotion-free > holddown_reset = 60 s
  rig.suspect(0);
  // The reset wiped the old count before this demotion was recorded.
  EXPECT_EQ(rig.elector.demotions(0), 1u);
}

TEST(Elector, IncarnationBumpClearsHysteresis) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(1);
  rig.trust(0);
  rig.suspect(0);
  rig.suspect(0);  // no-op transition-wise, but exercise idempotence
  rig.advance_to(2.0);
  rig.trust(0);  // held down until t = 6
  ASSERT_EQ(rig.elector.leader(), 1u);
  // Process 0 re-announces itself as a new incarnation: its flaps belong
  // to the previous life, so it leads immediately.
  rig.elector.on_peer_incarnation(0, 1, rig.sim.now());
  EXPECT_EQ(rig.elector.demotions(0), 0u);
  EXPECT_EQ(rig.elector.leader(), 0u);
  // A stale (not higher) incarnation notification changes nothing.
  rig.suspect(0);
  rig.elector.on_peer_incarnation(0, 1, rig.sim.now());
  EXPECT_EQ(rig.elector.demotions(0), 1u);
}

TEST(Elector, CrashRecordsNoLeaderAndRecoveryRegatesSelf) {
  Rig rig(1);
  rig.advance_to(1.0);
  rig.trust(0);
  ASSERT_EQ(rig.elector.leader(), 0u);
  rig.elector.crash(rig.sim.now());
  EXPECT_FALSE(rig.elector.alive());
  EXPECT_EQ(rig.elector.leader(), kNoLeader);
  EXPECT_EQ(rig.elector.trace().back().leader, kNoLeader);
  rig.trust(0);  // ignored while dead
  EXPECT_EQ(rig.elector.leader(), kNoLeader);
  rig.advance_to(10.0);
  rig.elector.recover(rig.sim.now());
  EXPECT_TRUE(rig.elector.alive());
  EXPECT_EQ(rig.elector.leader(), kNoLeader);  // everyone suspected afresh
  rig.advance_to(12.1);  // self_claim_delay = 2 s after recovery
  EXPECT_EQ(rig.elector.leader(), 1u);
}

TEST(Elector, WarmRestoreLatchesLeaderAndTrustConfirmsIt) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(0);
  ASSERT_EQ(rig.elector.leader(), 0u);
  const persist::ElectionState state =
      rig.elector.export_state(rig.sim.now());
  ASSERT_TRUE(state.has_leader);
  EXPECT_EQ(state.leader, 0u);

  // Observer-side restart: detectors rebuilt (everyone suspect), state
  // restored warm — the latch keeps the leader without fresh evidence.
  rig.advance_to(5.0);
  rig.elector.restore_state(state, /*warm=*/true, rig.sim.now());
  EXPECT_EQ(rig.elector.leader(), 0u);
  // The first real trust transition confirms the latch; leadership then
  // rests on evidence and survives the grace deadline.
  rig.advance_to(6.0);
  rig.trust(0);
  rig.advance_to(30.0);
  EXPECT_EQ(rig.elector.leader(), 0u);
}

TEST(Elector, WarmRestoreLatchLapsesWithoutConfirmation) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(0);
  const persist::ElectionState state =
      rig.elector.export_state(rig.sim.now());
  rig.advance_to(5.0);
  rig.elector.restore_state(state, /*warm=*/true, rig.sim.now());
  ASSERT_EQ(rig.elector.leader(), 0u);
  // No detector ever re-trusts 0: at restore + restore_grace = 15 s the
  // latch lapses and the elector falls back to the best real evidence —
  // itself (warm restores do not re-gate self-eligibility).
  rig.advance_to(15.1);
  EXPECT_EQ(rig.elector.leader(), 2u);
}

TEST(Elector, WarmLatchYieldsToLowerIdEvidence) {
  Rig rig(2);
  rig.advance_to(1.0);
  rig.trust(1);
  ASSERT_EQ(rig.elector.leader(), 1u);
  const persist::ElectionState state =
      rig.elector.export_state(rig.sim.now());
  rig.advance_to(5.0);
  rig.elector.restore_state(state, /*warm=*/true, rig.sim.now());
  ASSERT_EQ(rig.elector.leader(), 1u);  // latched
  rig.trust(0);
  EXPECT_EQ(rig.elector.leader(), 0u);  // real lower-id evidence wins
}

TEST(Elector, ColdRestoreFallsBackToFollower) {
  Rig rig(1);
  rig.advance_to(1.0);
  rig.trust(0);
  ASSERT_EQ(rig.elector.leader(), 0u);
  rig.advance_to(5.0);
  rig.elector.restore_state(std::nullopt, /*warm=*/false, rig.sim.now());
  EXPECT_EQ(rig.elector.leader(), kNoLeader);
  rig.advance_to(7.1);  // self-claim re-gated like a recovery
  EXPECT_EQ(rig.elector.leader(), 1u);
}

TEST(Elector, ListenersSeeEveryChangeInOrder) {
  Rig rig(2);
  std::vector<LeaderChange> seen;
  rig.elector.add_listener(
      [&seen](const LeaderChange& c) { seen.push_back(c); });
  rig.advance_to(1.0);
  rig.trust(1);
  rig.trust(0);
  rig.suspect(0);
  EXPECT_EQ(seen.size(), 3u);
  // The trace replays the same history (listener attached from the start).
  EXPECT_EQ(seen, rig.elector.trace());
}

TEST(Elector, RejectsBadConstructionAndUse) {
  sim::Simulator sim;
  EXPECT_THROW(Elector(sim, 0, 1, tight_options()), std::invalid_argument);
  EXPECT_THROW(Elector(sim, 3, 3, tight_options()), std::invalid_argument);
  Elector::Options bad = tight_options();
  bad.holddown_cap = seconds(1.0);  // < holddown_base
  EXPECT_THROW(Elector(sim, 0, 3, bad), std::invalid_argument);

  Rig rig(1);
  EXPECT_THROW(rig.elector.activate(), std::invalid_argument);
  EXPECT_THROW(rig.elector.on_peer_transition(1, Verdict::kTrust,
                                              rig.sim.now()),
               std::invalid_argument);  // self is not a peer
  EXPECT_THROW(rig.elector.recover(rig.sim.now()),
               std::invalid_argument);  // not crashed
  EXPECT_THROW(rig.elector.restore_state(std::nullopt, /*warm=*/true,
                                         rig.sim.now()),
               std::invalid_argument);  // warm needs a state
}

// ---- window algebra and QoS metrics ---------------------------------------

fault::Window win(double b, double e) {
  return fault::Window{TimePoint(b), TimePoint(e)};
}

TEST(LeaderQos, MergeWindowsCoalescesAndClamps) {
  const auto merged = merge_windows(
      {win(40.0, 50.0), win(10.0, 20.0), win(15.0, 30.0), win(45.0, 200.0)},
      TimePoint(100.0));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].begin.seconds(), 10.0);
  EXPECT_EQ(merged[0].end.seconds(), 30.0);
  EXPECT_EQ(merged[1].begin.seconds(), 40.0);
  EXPECT_EQ(merged[1].end.seconds(), 100.0);  // clamped to the horizon
}

TEST(LeaderQos, SubtractWindowsPunchesHoles) {
  const auto rest = subtract_windows({win(0.0, 100.0)},
                                     {win(20.0, 30.0), win(50.0, 60.0)});
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].end.seconds(), 20.0);
  EXPECT_EQ(rest[1].begin.seconds(), 30.0);
  EXPECT_EQ(rest[1].end.seconds(), 50.0);
  EXPECT_EQ(rest[2].begin.seconds(), 60.0);
  EXPECT_EQ(rest[2].end.seconds(), 100.0);
}

QosInput steady_input() {
  QosInput in;
  in.n = 2;
  in.horizon = TimePoint(100.0);
  in.traces = {{{TimePoint(0.0), 0}}, {{TimePoint(0.0), 0}}};
  in.view_windows = {{win(0.0, 100.0)}, {win(0.0, 100.0)}};
  in.election_bound = seconds(10.0);
  return in;
}

TEST(LeaderQos, SteadyAgreementIsOneStableInterval) {
  const QosReport r = compute_qos(steady_input());
  EXPECT_DOUBLE_EQ(r.exactly_one_leader_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.no_leader_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.disagreement_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.max_stability_s, 100.0);
  EXPECT_EQ(r.elections, 0u);
  EXPECT_EQ(r.spurious_demotions, 0u);
  EXPECT_EQ(r.bound_violations, 0u);
}

TEST(LeaderQos, DroppingALiveLeaderInCalmAirIsSpurious) {
  QosInput in = steady_input();
  // View 1 abandons leader 0 at t = 50 and re-adopts it at t = 52.
  in.traces[1].push_back({TimePoint(50.0), kNoLeader});
  in.traces[1].push_back({TimePoint(52.0), 0});
  const QosReport r = compute_qos(in);
  EXPECT_EQ(r.spurious_demotions, 1u);
  EXPECT_NEAR(r.exactly_one_leader_fraction, 0.98, 1e-9);
  EXPECT_NEAR(r.undisturbed_violation_s, 2.0, 1e-9);
  // The gap closed 2 s after it opened (no fault to blame): one election,
  // latency 2 s, within the 10 s bound.
  EXPECT_EQ(r.elections, 1u);
  EXPECT_NEAR(r.max_election_latency_s, 2.0, 1e-9);
  EXPECT_EQ(r.bound_violations, 0u);
}

TEST(LeaderQos, DemotionInsideADisturbanceIsForgiven) {
  QosInput in = steady_input();
  in.traces[1].push_back({TimePoint(50.0), kNoLeader});
  in.traces[1].push_back({TimePoint(52.0), 0});
  in.disturbance_windows = {win(45.0, 60.0)};
  in.fault_windows = {win(45.0, 51.0)};
  const QosReport r = compute_qos(in);
  EXPECT_EQ(r.spurious_demotions, 0u);
  EXPECT_DOUBLE_EQ(r.undisturbed_violation_s, 0.0);
  // Latency counts from the raw fault end (t = 51), not the gap start.
  EXPECT_EQ(r.elections, 1u);
  EXPECT_NEAR(r.max_election_latency_s, 1.0, 1e-9);
}

TEST(LeaderQos, SwitchingToALowerIdIsAdoptionNotDemotion) {
  QosInput in = steady_input();
  in.traces = {{{TimePoint(0.0), 1}}, {{TimePoint(0.0), 1}}};
  in.traces[1].push_back({TimePoint(50.0), 0});
  in.traces[0].push_back({TimePoint(50.5), 0});
  const QosReport r = compute_qos(in);
  EXPECT_EQ(r.spurious_demotions, 0u);
  EXPECT_EQ(r.agreed_leader_changes, 1u);  // 1 -> 0 across an agreement run
}

TEST(LeaderQos, GapOutlivingItsDeadlineIsABoundViolation) {
  QosInput in = steady_input();
  in.traces[1].push_back({TimePoint(50.0), kNoLeader});
  in.traces[1].push_back({TimePoint(75.0), 0});  // 25 s > 10 s bound
  const QosReport r = compute_qos(in);
  EXPECT_EQ(r.elections, 1u);
  EXPECT_EQ(r.bound_violations, 1u);
}

// ---- FaultPlan ground-truth queries ---------------------------------------

TEST(FaultPlanGroundTruth, UpWindowsComplementDowntime) {
  fault::FaultPlan plan;
  plan.crash_process(1, TimePoint(100.0));
  plan.recover_process(1, TimePoint(200.0));
  const auto up = plan.ground_truth_up_windows(1, TimePoint(500.0));
  ASSERT_EQ(up.size(), 2u);
  EXPECT_EQ(up[0].begin.seconds(), 0.0);
  EXPECT_EQ(up[0].end.seconds(), 100.0);
  EXPECT_EQ(up[1].begin.seconds(), 200.0);
  EXPECT_EQ(up[1].end.seconds(), 500.0);
  // A process the plan never touches is up for the whole horizon.
  const auto idle = plan.ground_truth_up_windows(0, TimePoint(500.0));
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_EQ(idle[0].end.seconds(), 500.0);
}

TEST(FaultPlanGroundTruth, CrashWithoutRecoveryEndsTheUpTime) {
  fault::FaultPlan plan;
  plan.crash_process(0, TimePoint(300.0));
  const auto up = plan.ground_truth_up_windows(0, TimePoint(500.0));
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].end.seconds(), 300.0);
}

TEST(FaultPlanGroundTruth, PerProcessWindowsAreIndependent) {
  fault::FaultPlan plan;
  plan.crash_process(0, TimePoint(100.0));
  plan.recover_process(0, TimePoint(150.0));
  plan.isolate(1, TimePoint(200.0), TimePoint(260.0));
  plan.elector_crash(2, TimePoint(300.0));
  plan.elector_restart(2, TimePoint(340.0));
  EXPECT_EQ(plan.downtime_windows(0).size(), 1u);
  EXPECT_TRUE(plan.downtime_windows(1).empty());
  ASSERT_EQ(plan.isolation_windows(1).size(), 1u);
  EXPECT_EQ(plan.isolation_windows(1)[0].begin.seconds(), 200.0);
  ASSERT_EQ(plan.elector_downtime_windows(2).size(), 1u);
  EXPECT_EQ(plan.elector_downtime_windows(2)[0].end.seconds(), 340.0);
  EXPECT_TRUE(plan.elector_downtime_windows(0).empty());
}

TEST(FaultPlanGroundTruth, ContractsRejectMalformedSchedules) {
  fault::FaultPlan orphan_recover;
  orphan_recover.recover_process(0, TimePoint(50.0));
  EXPECT_THROW((void)orphan_recover.downtime_windows(0),
               std::invalid_argument);

  fault::FaultPlan double_crash;
  double_crash.crash_process(0, TimePoint(10.0));
  double_crash.crash_process(0, TimePoint(20.0));
  EXPECT_THROW((void)double_crash.downtime_windows(0),
               std::invalid_argument);

  fault::FaultPlan plan;
  EXPECT_THROW((void)plan.ground_truth_up_windows(0, TimePoint::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::election
