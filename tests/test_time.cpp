// Unit tests for the strong time types.

#include <gtest/gtest.h>

#include <sstream>

#include "common/time.hpp"

namespace chenfd {
namespace {

TEST(Duration, DefaultIsZero) {
  EXPECT_EQ(Duration().seconds(), 0.0);
  EXPECT_EQ(Duration::zero().seconds(), 0.0);
}

TEST(Duration, Arithmetic) {
  const Duration a(2.0);
  const Duration b(0.5);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).seconds(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).seconds(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).seconds(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_DOUBLE_EQ((-a).seconds(), -2.0);
}

TEST(Duration, CompoundAssignment) {
  Duration d(1.0);
  d += Duration(2.0);
  EXPECT_DOUBLE_EQ(d.seconds(), 3.0);
  d -= Duration(0.5);
  EXPECT_DOUBLE_EQ(d.seconds(), 2.5);
  d *= 2.0;
  EXPECT_DOUBLE_EQ(d.seconds(), 5.0);
  d /= 5.0;
  EXPECT_DOUBLE_EQ(d.seconds(), 1.0);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration(1.0), Duration(2.0));
  EXPECT_LE(Duration(2.0), Duration(2.0));
  EXPECT_GT(Duration(3.0), Duration(2.0));
  EXPECT_EQ(Duration(2.0), Duration(2.0));
  EXPECT_NE(Duration(2.0), Duration(2.1));
}

TEST(Duration, Infinity) {
  EXPECT_TRUE(Duration::infinity().is_infinite());
  EXPECT_FALSE(Duration(1e300).is_infinite());
  EXPECT_GT(Duration::infinity(), Duration(1e300));
}

TEST(Duration, Helpers) {
  EXPECT_DOUBLE_EQ(seconds(2.0).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(milliseconds(1500.0).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(minutes(2.0).seconds(), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.0).seconds(), 3600.0);
  EXPECT_DOUBLE_EQ(days(30.0).seconds(), 2'592'000.0);  // the paper's T_MR^L
}

TEST(Duration, StreamOutput) {
  std::ostringstream os;
  os << Duration(1.5);
  EXPECT_EQ(os.str(), "1.5s");
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t(10.0);
  EXPECT_DOUBLE_EQ((t + Duration(5.0)).seconds(), 15.0);
  EXPECT_DOUBLE_EQ((Duration(5.0) + t).seconds(), 15.0);
  EXPECT_DOUBLE_EQ((t - Duration(4.0)).seconds(), 6.0);
  EXPECT_DOUBLE_EQ((TimePoint(10.0) - TimePoint(4.0)).seconds(), 6.0);
}

TEST(TimePoint, CompoundAssignment) {
  TimePoint t(1.0);
  t += Duration(2.0);
  EXPECT_DOUBLE_EQ(t.seconds(), 3.0);
}

TEST(TimePoint, Comparisons) {
  EXPECT_LT(TimePoint(1.0), TimePoint(2.0));
  EXPECT_EQ(TimePoint::zero(), TimePoint(0.0));
  EXPECT_TRUE(TimePoint::infinity().is_infinite());
}

TEST(TimePoint, SigmaTauRelation) {
  // tau_i = sigma_i + delta, the core identity of NFD-S.
  const Duration eta(1.0);
  const Duration delta(2.5);
  for (int i = 1; i <= 10; ++i) {
    const TimePoint sigma = TimePoint::zero() + eta * static_cast<double>(i);
    const TimePoint tau = sigma + delta;
    EXPECT_DOUBLE_EQ((tau - sigma).seconds(), delta.seconds());
  }
}

}  // namespace
}  // namespace chenfd
