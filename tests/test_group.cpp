// Tests for the group-monitoring mesh.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/analysis.hpp"
#include "dist/exponential.hpp"
#include "group/group.hpp"
#include "qos/replay.hpp"

namespace chenfd::group {
namespace {

Group::Config make_config(std::size_t n, double p_loss = 0.0,
                          std::uint64_t seed = 1) {
  Group::Config cfg;
  cfg.size = n;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.p_loss = p_loss;
  cfg.detector = core::NfdSParams{seconds(1.0), seconds(1.0)};
  cfg.seed = seed;
  return cfg;
}

TEST(Group, RejectsBadConfig) {
  EXPECT_THROW(Group(make_config(1)), std::invalid_argument);
  Group::Config cfg = make_config(3);
  cfg.delay = nullptr;
  EXPECT_THROW(Group(std::move(cfg)), std::invalid_argument);
}

TEST(Group, AllCorrectEventuallyTrusted) {
  Group g(make_config(4));
  g.start();
  g.simulator().run_until(TimePoint(10.0));
  EXPECT_TRUE(g.all_correct_trusted());
  for (ProcessId o = 0; o < 4; ++o) {
    EXPECT_EQ(g.view(o).size(), 4u);
  }
  g.stop();
}

TEST(Group, InitiallyEveryoneSuspected) {
  Group g(make_config(3));
  g.start();
  // Before tau_1 = eta + delta = 2, detectors that saw no heartbeat
  // suspect (they start suspecting).
  EXPECT_TRUE(g.suspects(0, 1));
  EXPECT_EQ(g.view(0).size(), 1u);  // just itself
  g.stop();
}

TEST(Group, SelfIsNeverSuspected) {
  Group g(make_config(3));
  g.start();
  EXPECT_FALSE(g.suspects(0, 0));
  EXPECT_THROW((void)g.detector(1, 1), std::invalid_argument);
  g.stop();
}

TEST(Group, CrashDetectedByAllWithinBound) {
  Group g(make_config(5));
  g.start();
  g.simulator().run_until(TimePoint(20.0));
  ASSERT_TRUE(g.all_correct_trusted());
  const TimePoint crash(23.4);
  g.crash_at(2, crash);
  // Theorem 5.1 per pair: every observer suspects 2 by crash + delta + eta.
  g.simulator().run_until(crash + seconds(2.0) + seconds(1e-3));
  EXPECT_TRUE(g.all_crashes_detected());
  for (ProcessId o = 0; o < 5; ++o) {
    if (o == 2) continue;
    const auto v = g.view(o);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_TRUE(std::find(v.begin(), v.end(), 2u) == v.end());
  }
  g.stop();
}

TEST(Group, CrashedProcessStillRunsItsDetectors) {
  // The paper's model: a crash stops p's sending; q-side state of the
  // crashed process is unobservable, but our simulation keeps it defined.
  Group g(make_config(3));
  g.start();
  g.simulator().run_until(TimePoint(10.0));
  g.crash_at(0, TimePoint(10.5));
  g.simulator().run_until(TimePoint(20.0));
  EXPECT_TRUE(g.crashed(0));
  EXPECT_FALSE(g.crashed(1));
  // 1 and 2 still trust each other.
  EXPECT_FALSE(g.suspects(1, 2));
  EXPECT_TRUE(g.suspects(1, 0));
  g.stop();
}

TEST(Group, MultipleCrashes) {
  Group g(make_config(6));
  g.start();
  g.simulator().run_until(TimePoint(15.0));
  g.crash_at(1, TimePoint(16.0));
  g.crash_at(4, TimePoint(17.5));
  g.simulator().run_until(TimePoint(25.0));
  EXPECT_TRUE(g.all_crashes_detected());
  EXPECT_TRUE(g.all_correct_trusted());
  for (ProcessId o : {0u, 2u, 3u, 5u}) {
    EXPECT_EQ(g.view(o).size(), 4u);
  }
  g.stop();
}

TEST(Group, LossyLinksCauseOccasionalFalseSuspicions) {
  // With 20% loss and delta = 1, some pair somewhere will blip over a long
  // window — and recover.
  Group g(make_config(4, 0.2, 99));
  g.start();
  bool saw_false_suspicion = false;
  for (int t = 10; t <= 2000; ++t) {
    g.simulator().run_until(TimePoint(static_cast<double>(t)));
    if (!g.all_correct_trusted()) saw_false_suspicion = true;
  }
  EXPECT_TRUE(saw_false_suspicion);
  // Mistakes are transient: run loss-free-ish settling and re-check...
  // (detectors recover by construction; verify the group is mostly sane).
  g.simulator().run_until(TimePoint(2002.0));
  for (ProcessId o = 0; o < 4; ++o) {
    EXPECT_GE(g.view(o).size(), 1u);
  }
  g.stop();
}

TEST(Group, DetectorAccessorsAreConsistent) {
  Group g(make_config(3));
  g.start();
  g.simulator().run_until(TimePoint(10.0));
  // detector(o, t) is the detector AT o watching t; its verdict must match
  // suspects(o, t).
  for (ProcessId o = 0; o < 3; ++o) {
    for (ProcessId t = 0; t < 3; ++t) {
      if (o == t) continue;
      EXPECT_EQ(g.suspects(o, t),
                g.detector(o, t).output() == Verdict::kSuspect);
    }
  }
  g.stop();
}

TEST(Group, PairwiseQoSMatchesTwoProcessAnalysis) {
  // Every ordered pair of the mesh is an independent copy of the paper's
  // two-process system, so a pair detector's measured E(T_MR) must match
  // Theorem 5.  (Validates the mesh wiring end-to-end.)
  auto cfg = make_config(3, 0.05, 7);
  const auto params = cfg.detector;
  dist::Exponential delay(0.02);
  core::NfdSAnalysis exact(params, 0.05, delay);

  Group g(std::move(cfg));
  std::vector<Transition> log;
  g.detector(1, 0).add_listener(
      [&log](const Transition& t) { log.push_back(t); });
  g.start();
  const double horizon = 100000.0;
  g.simulator().run_until(TimePoint(horizon));
  g.stop();

  qos::Recorder rec =
      qos::replay(log, TimePoint(100.0), TimePoint(horizon));
  ASSERT_GT(rec.s_transitions(), 500u);
  EXPECT_NEAR(rec.mistake_recurrence().mean(), exact.e_tmr().seconds(),
              0.1 * exact.e_tmr().seconds());
  EXPECT_NEAR(rec.query_accuracy(), exact.query_accuracy(), 0.005);
}

TEST(Group, CrashIdempotenceKeepsEarliest) {
  Group g(make_config(3));
  g.start();
  g.simulator().run_until(TimePoint(5.0));
  g.crash_at(1, TimePoint(8.0));
  g.crash_at(1, TimePoint(50.0));  // later: ignored
  g.simulator().run_until(TimePoint(12.0));
  EXPECT_TRUE(g.crashed(1));
  g.stop();
}

}  // namespace
}  // namespace chenfd::group
