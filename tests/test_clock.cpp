// Unit tests for the clock models.

#include <gtest/gtest.h>

#include <stdexcept>

#include "clock/clock.hpp"

namespace chenfd::clk {
namespace {

using chenfd::Duration;
using chenfd::TimePoint;

TEST(SynchronizedClock, Identity) {
  SynchronizedClock c;
  EXPECT_EQ(c.local(TimePoint(5.0)), TimePoint(5.0));
  EXPECT_EQ(c.real(TimePoint(5.0)), TimePoint(5.0));
}

TEST(OffsetClock, AppliesSkew) {
  OffsetClock c(Duration(3.0));
  EXPECT_EQ(c.local(TimePoint(5.0)), TimePoint(8.0));
  EXPECT_EQ(c.real(TimePoint(8.0)), TimePoint(5.0));
  EXPECT_EQ(c.offset(), Duration(3.0));
}

TEST(OffsetClock, NegativeSkew) {
  OffsetClock c(Duration(-2.0));
  EXPECT_EQ(c.local(TimePoint(5.0)), TimePoint(3.0));
}

TEST(OffsetClock, RoundTrip) {
  OffsetClock c(Duration(123.456));
  for (double t : {0.0, 1.0, 99.5}) {
    EXPECT_DOUBLE_EQ(c.real(c.local(TimePoint(t))).seconds(), t);
  }
}

TEST(OffsetClock, IntervalsAreDriftFree) {
  // Section 6: skewed but drift-free clocks measure intervals exactly.
  OffsetClock c(Duration(42.0));
  const Duration real_interval = TimePoint(10.0) - TimePoint(3.0);
  const Duration local_interval =
      c.local(TimePoint(10.0)) - c.local(TimePoint(3.0));
  EXPECT_EQ(local_interval, real_interval);
}

TEST(DriftingClock, AppliesRate) {
  DriftingClock c(Duration(1.0), 2.0);
  EXPECT_EQ(c.local(TimePoint(3.0)), TimePoint(7.0));
  EXPECT_DOUBLE_EQ(c.real(TimePoint(7.0)).seconds(), 3.0);
  EXPECT_DOUBLE_EQ(c.rate(), 2.0);
}

TEST(DriftingClock, TinyDriftBarelyDistortsIntervals) {
  // The paper's "order of 10^-6" drift over a 30s detection horizon is
  // 30 microseconds — negligible versus typical delays.
  DriftingClock c(Duration::zero(), 1.0 + 1e-6);
  const double local_interval =
      (c.local(TimePoint(30.0)) - c.local(TimePoint(0.0))).seconds();
  EXPECT_NEAR(local_interval, 30.0, 1e-4);
  EXPECT_NE(local_interval, 30.0);
}

TEST(DriftingClock, RejectsNonPositiveRate) {
  EXPECT_THROW(DriftingClock(Duration::zero(), 0.0), std::invalid_argument);
  EXPECT_THROW(DriftingClock(Duration::zero(), -1.0), std::invalid_argument);
}

TEST(Clocks, PolymorphicUse) {
  OffsetClock off(Duration(5.0));
  SynchronizedClock sync;
  const Clock* clocks[] = {&off, &sync};
  EXPECT_EQ(clocks[0]->local(TimePoint(1.0)), TimePoint(6.0));
  EXPECT_EQ(clocks[1]->local(TimePoint(1.0)), TimePoint(1.0));
}

}  // namespace
}  // namespace chenfd::clk
