// Tests for the deterministic parallel Monte-Carlo runner: bit-identical
// results across thread counts, substream independence, and edge cases.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/experiments.hpp"
#include "core/fast_sim.hpp"
#include "core/nfd_s.hpp"
#include "dist/exponential.hpp"
#include "runner/parallel_sweep.hpp"
#include "runner/thread_pool.hpp"

namespace chenfd::runner {
namespace {

core::StopCriteria small_stop() {
  core::StopCriteria stop;
  stop.target_s_transitions = 40;
  stop.max_heartbeats = 300'000;
  return stop;
}

std::vector<AccuracyTask> small_sweep() {
  dist::Exponential delay(0.02);
  std::vector<AccuracyTask> points;
  for (const double t_du : {1.25, 1.75, 2.25}) {
    points.push_back(nfd_s_task(
        core::NfdSParams{Duration(1.0), Duration(t_du - 1.0)}, 0.01, delay,
        small_stop()));
  }
  return points;
}

void expect_bit_identical(const core::AccuracyResult& a,
                          const core::AccuracyResult& b) {
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_EQ(a.s_transitions, b.s_transitions);
  // Exact double equality on purpose: the determinism guarantee is
  // bit-level, not approximate.
  EXPECT_EQ(a.observed_seconds, b.observed_seconds);
  EXPECT_EQ(a.trust_seconds, b.trust_seconds);
  EXPECT_EQ(a.e_tmr(), b.e_tmr());
  EXPECT_EQ(a.e_tm(), b.e_tm());
  EXPECT_EQ(a.mistake_recurrence.samples(), b.mistake_recurrence.samples());
  EXPECT_EQ(a.mistake_duration.samples(), b.mistake_duration.samples());
  EXPECT_EQ(a.good_period.samples(), b.good_period.samples());
}

TEST(ParallelSweep, BitIdenticalAcrossThreadCounts) {
  const auto points = small_sweep();
  const auto serial =
      ParallelSweep(RunnerOptions{1}).run(points, 3, 777);
  for (const unsigned jobs : {2u, 8u}) {
    const auto parallel =
        ParallelSweep(RunnerOptions{jobs}).run(points, 3, 777);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t p = 0; p < serial.size(); ++p) {
      expect_bit_identical(serial[p], parallel[p]);
    }
  }
}

TEST(ParallelSweep, NfdEBitIdenticalAcrossThreadCounts) {
  // The batched NFD-E event loop must be deterministic under the runner
  // exactly like NFD-S: per-task substreams, reduction in task order.
  dist::Exponential delay(0.02);
  std::vector<AccuracyTask> points;
  for (const double alpha : {0.5, 1.0, 1.5}) {
    points.push_back(nfd_e_task(
        core::NfdEParams{Duration(1.0), Duration(alpha), 16}, 0.02, delay,
        small_stop()));
  }
  const auto serial = ParallelSweep(RunnerOptions{1}).run(points, 3, 555);
  const auto parallel = ParallelSweep(RunnerOptions{4}).run(points, 3, 555);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    expect_bit_identical(serial[p], parallel[p]);
  }
}

TEST(ParallelSweep, SfdBitIdenticalAcrossThreadCounts) {
  dist::Exponential delay(0.02);
  std::vector<AccuracyTask> points;
  for (const double timeout : {1.2, 1.6, 2.0}) {
    points.push_back(sfd_task(core::SfdParams{Duration(timeout)},
                              Duration(1.0), 0.02, delay, small_stop()));
  }
  const auto serial = ParallelSweep(RunnerOptions{1}).run(points, 3, 556);
  const auto parallel = ParallelSweep(RunnerOptions{4}).run(points, 3, 556);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    expect_bit_identical(serial[p], parallel[p]);
  }
}

TEST(ParallelSweep, SubstreamZeroMatchesSerialRng) {
  // Substream 0 is Rng(root_seed) itself, so a 1-task run through the
  // runner reproduces the pre-runner serial code path exactly.
  dist::Exponential delay(0.02);
  const core::NfdSParams params{Duration(1.0), Duration(0.5)};
  Rng rng(4242);
  const auto direct =
      core::fast_nfd_s_accuracy(params, 0.01, delay, rng, small_stop());
  const auto via_runner =
      ParallelSweep(RunnerOptions{4})
          .run_one(nfd_s_task(params, 0.01, delay, small_stop()), 1, 4242);
  expect_bit_identical(direct, via_runner);
}

TEST(ParallelSweep, MergedReplicationsAccumulate) {
  const auto points = small_sweep();
  const auto merged = ParallelSweep(RunnerOptions{2}).run(points, 4, 1);
  for (const auto& r : merged) {
    // 4 replications of up to 40 mistakes each, merged.
    EXPECT_GT(r.s_transitions, 40u);
    EXPECT_LE(r.s_transitions, 160u);
    EXPECT_EQ(r.mistake_recurrence.count(),
              r.mistake_recurrence.samples().size());
  }
}

TEST(ParallelSweep, EmptyGridAndZeroReplications) {
  const ParallelSweep sweep(RunnerOptions{4});
  EXPECT_TRUE(sweep.run({}, 5, 1).empty());
  EXPECT_TRUE(sweep.run(small_sweep(), 0, 1).empty());
}

TEST(ParallelSweep, SingleTaskGrid) {
  dist::Exponential delay(0.02);
  const auto task =
      nfd_s_task(core::NfdSParams{Duration(1.0), Duration(0.25)}, 0.01, delay,
                 small_stop());
  const auto results = ParallelSweep(RunnerOptions{8}).run({task}, 1, 9);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].s_transitions, 0u);
}

TEST(Substreams, IndexZeroIsRootAndStreamsDiffer) {
  auto streams = make_substreams(123, 4);
  ASSERT_EQ(streams.size(), 4u);
  Rng root(123);
  EXPECT_TRUE(streams[0] == root);
  // Jumped streams are 2^128 draws apart: their next outputs must all
  // differ, and no stream may equal another's state.
  std::set<std::uint64_t> first_draws;
  for (auto& s : streams) first_draws.insert(s());
  EXPECT_EQ(first_draws.size(), 4u);
}

TEST(Substreams, JumpCommutesWithDrawingIndependence) {
  // The substream construction must not depend on how many draws were taken
  // from earlier streams (tasks run concurrently) — streams are derived
  // before any task runs, from jumps alone.
  auto a = make_substreams(55, 3);
  auto b = make_substreams(55, 3);
  for (int i = 0; i < 100; ++i) (void)a[0]();
  EXPECT_EQ(a[2](), b[2]());
}

TEST(RunIndexed, RunsEveryTaskExactlyOnce) {
  for (const unsigned jobs : {1u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    run_indexed(hits.size(), jobs,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(RunIndexed, ZeroTasksIsANoop) {
  run_indexed(0, 8, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(RunIndexed, PropagatesTaskExceptions) {
  EXPECT_THROW(
      run_indexed(16, 4,
                  [](std::size_t i) {
                    if (i == 7) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelDetection, DeterministicAcrossThreadCounts) {
  dist::Exponential delay(0.02);
  const core::NetworkModel model{0.01, delay};
  core::DetectionExperiment exp;
  exp.runs = 70;  // 3 chunks: 32 + 32 + 6
  exp.warmup = seconds(5.0);
  exp.settle = seconds(20.0);
  exp.seed = 31337;
  const core::DetectorFactory factory = [](core::Testbed& tb) {
    return std::make_unique<core::NfdS>(
        tb.simulator(), core::NfdSParams{Duration(1.0), Duration(1.0)});
  };
  const auto serial =
      parallel_detection_times(factory, model, exp, RunnerOptions{1});
  const auto parallel =
      parallel_detection_times(factory, model, exp, RunnerOptions{8});
  EXPECT_EQ(serial.count(), 70u);
  EXPECT_EQ(serial.samples(), parallel.samples());
}

}  // namespace
}  // namespace chenfd::runner
