// Cross-validation: the discrete-event testbed, the fast Monte-Carlo
// engines, and the Theorem 5 closed forms must all agree on the same
// network model.  This is the load-bearing test for the Fig. 12 harness.

#include <gtest/gtest.h>

#include <memory>

#include "clock/clock.hpp"
#include "core/analysis.hpp"
#include "core/experiments.hpp"
#include "core/fast_sim.hpp"
#include "core/nfd_e.hpp"
#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "dist/exponential.hpp"

namespace chenfd::core {
namespace {

constexpr double kPLoss = 0.02;  // slightly lossier than Fig. 12 so that
                                 // mistakes are frequent enough for a test

TEST(CrossValidation, NfdSDesVsAnalytic) {
  dist::Exponential delay(0.02);
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  NfdSAnalysis exact(params, kPLoss, delay);

  NetworkModel model{kPLoss, delay};
  AccuracyExperiment exp;
  exp.duration = seconds(300000.0);
  exp.seed = 1001;
  const auto rec = run_accuracy(
      [&params](Testbed& tb) {
        return std::make_unique<NfdS>(tb.simulator(), params);
      },
      model, exp);

  ASSERT_GT(rec.s_transitions(), 1000u);
  EXPECT_NEAR(rec.mistake_recurrence().mean(), exact.e_tmr().seconds(),
              0.1 * exact.e_tmr().seconds());
  EXPECT_NEAR(rec.mistake_duration().mean(), exact.e_tm().seconds(),
              0.1 * exact.e_tm().seconds());
  EXPECT_NEAR(rec.query_accuracy(), exact.query_accuracy(), 0.005);
}

TEST(CrossValidation, NfdSDesVsFastEngine) {
  dist::Exponential delay(0.02);
  const NfdSParams params{Duration(1.0), Duration(1.5)};

  NetworkModel model{kPLoss, delay};
  AccuracyExperiment exp;
  exp.duration = seconds(400000.0);
  exp.seed = 1002;
  const auto rec = run_accuracy(
      [&params](Testbed& tb) {
        return std::make_unique<NfdS>(tb.simulator(), params);
      },
      model, exp);

  Rng rng(1003);
  StopCriteria stop;
  stop.target_s_transitions = 20000;
  const auto fast = fast_nfd_s_accuracy(params, kPLoss, delay, rng, stop);

  ASSERT_GT(rec.s_transitions(), 100u);
  EXPECT_NEAR(rec.mistake_recurrence().mean(), fast.e_tmr(),
              0.15 * fast.e_tmr());
  EXPECT_NEAR(rec.query_accuracy(), fast.query_accuracy(), 0.005);
}

TEST(CrossValidation, NfdEDesVsFastEngine) {
  dist::Exponential delay(0.02);
  const NfdEParams params{Duration(1.0), Duration(0.98), 32};

  NetworkModel model{kPLoss, delay};
  AccuracyExperiment exp;
  exp.duration = seconds(300000.0);
  exp.seed = 1004;
  // NFD-E with a skewed q clock: the DES exercises the clock machinery the
  // fast engine omits (skew cannot change NFD-E's behaviour).
  exp.q_clock_offset = seconds(987.0);
  const auto rec = run_accuracy(
      [&params](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<NfdE>(tb.simulator(), tb.q_clock(), params);
      },
      model, exp);

  Rng rng(1005);
  StopCriteria stop;
  stop.target_s_transitions = 20000;
  const auto fast = fast_nfd_e_accuracy(params, kPLoss, delay, rng, stop);

  ASSERT_GT(rec.s_transitions(), 500u);
  EXPECT_NEAR(rec.mistake_recurrence().mean(), fast.e_tmr(),
              0.15 * fast.e_tmr());
  EXPECT_NEAR(rec.query_accuracy(), fast.query_accuracy(), 0.005);
}

TEST(CrossValidation, SfdDesVsFastEngine) {
  dist::Exponential delay(0.02);
  const SfdParams params{Duration(1.84), Duration(0.16)};  // SFD-L at T=2

  NetworkModel model{kPLoss, delay};
  AccuracyExperiment exp;
  exp.duration = seconds(200000.0);
  exp.seed = 1006;
  const auto rec = run_accuracy(
      [&params](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<Sfd>(tb.simulator(), tb.q_clock(), params);
      },
      model, exp);

  Rng rng(1007);
  StopCriteria stop;
  stop.target_s_transitions = 20000;
  const auto fast =
      fast_sfd_accuracy(params, Duration(1.0), kPLoss, delay, rng, stop);

  ASSERT_GT(rec.s_transitions(), 500u);
  EXPECT_NEAR(rec.mistake_recurrence().mean(), fast.e_tmr(),
              0.15 * fast.e_tmr());
  EXPECT_NEAR(rec.query_accuracy(), fast.query_accuracy(), 0.005);
}

TEST(CrossValidation, DuplicationDoesNotChangeNfdSQoS) {
  // Footnote 8: acting on the first copy makes duplication harmless.
  dist::Exponential delay(0.02);
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  NfdSAnalysis exact(params, kPLoss, delay);

  NetworkModel model{kPLoss, delay};
  AccuracyExperiment exp;
  exp.duration = seconds(200000.0);
  exp.seed = 1008;
  exp.duplication_probability = 0.3;
  const auto rec = run_accuracy(
      [&params](Testbed& tb) {
        return std::make_unique<NfdS>(tb.simulator(), params);
      },
      model, exp);

  EXPECT_NEAR(rec.mistake_recurrence().mean(), exact.e_tmr().seconds(),
              0.12 * exact.e_tmr().seconds());
}

}  // namespace
}  // namespace chenfd::core
