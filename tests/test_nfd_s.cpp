// Behavioural tests of NFD-S against the scenarios of Fig. 5 and the
// freshness-point semantics of Lemma 2.

#include <gtest/gtest.h>

#include <vector>

#include "core/nfd_s.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {
namespace {

net::Message hb(net::SeqNo seq, double sigma) {
  net::Message m;
  m.seq = seq;
  m.sent_real = TimePoint(sigma);
  m.sender_timestamp = TimePoint(sigma);
  return m;
}

struct Script {
  sim::Simulator sim;
  NfdS detector;
  std::vector<Transition> log;

  explicit Script(NfdSParams params) : detector(sim, params) {
    detector.add_listener([this](const Transition& t) { log.push_back(t); });
    detector.activate();
  }

  /// Delivers heartbeat `seq` (sent at sigma = seq * eta) at time `at`.
  void deliver(net::SeqNo seq, double at, double eta = 1.0) {
    sim.at(TimePoint(at), [this, seq, at, eta] {
      detector.on_heartbeat(hb(seq, eta * static_cast<double>(seq)),
                            TimePoint(at));
    });
  }

  void run_to(double t) { sim.run_until(TimePoint(t)); }
};

// eta = 1, delta = 0.5: tau_i = i + 0.5.
constexpr NfdSParams kParams{Duration(1.0), Duration(0.5)};

TEST(NfdS, InitiallySuspects) {
  Script s(kParams);
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
}

TEST(NfdS, Fig5aFreshMessageBeforeTau) {
  // m_1 arrives before tau_1: q trusts through [tau_1, tau_2).
  Script s(kParams);
  s.deliver(1, 1.2);
  s.run_to(2.4);  // just before tau_2
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0].to, Verdict::kTrust);
  EXPECT_EQ(s.log[0].at, TimePoint(1.2));
  EXPECT_EQ(s.detector.output(), Verdict::kTrust);
}

TEST(NfdS, Fig5bLateMessageMidInterval) {
  // Nothing fresh at tau_1, so q keeps suspecting (the output started at S,
  // so no transition fires at tau_1); m_1 — still fresh for interval 1 —
  // arrives at 1.8 and q starts trusting mid-interval.
  Script s(kParams);
  s.deliver(1, 1.8);
  s.run_to(1.7);
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
  EXPECT_TRUE(s.log.empty());
  s.run_to(2.4);
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(1.8), Verdict::kTrust}));
}

TEST(NfdS, Fig5cNoFreshMessage) {
  // m_1 never arrives; m_2 arrives late in interval 2.
  Script s(kParams);
  s.deliver(2, 3.1);  // tau_2 = 2.5, tau_3 = 3.5
  s.run_to(3.4);
  // Initially S; stays S through interval 1 (no transition: output was
  // already S); trusts at 3.1 since m_2 is fresh for interval 2.
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(3.1), Verdict::kTrust}));
}

TEST(NfdS, StaleMessageDoesNotRefresh) {
  // m_1 received in interval 2 (j = 1 < i = 2) must NOT cause trust.
  Script s(kParams);
  s.deliver(1, 2.7);
  s.run_to(3.4);
  EXPECT_TRUE(s.log.empty());
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
}

TEST(NfdS, HigherSeqCoversEarlierIntervals) {
  // Lemma 2: any m_j with j >= i refreshes interval i.  m_3 arriving early
  // (clairvoyantly fast link) in interval 1 keeps q trusting through
  // intervals 1..3.
  Script s(kParams);
  s.deliver(3, 1.4);
  s.run_to(4.4);  // through tau_4 = 4.5? no: up to 4.4, inside [tau_3,tau_4)
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0].to, Verdict::kTrust);
  s.run_to(4.6);  // past tau_4: m_3 now stale
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[1], (Transition{TimePoint(4.5), Verdict::kSuspect}));
}

TEST(NfdS, SuspectsAtEachFreshnessPointWithoutMessages) {
  Script s(kParams);
  s.run_to(10.0);
  // Output just stays S: no transitions ever fire.
  EXPECT_TRUE(s.log.empty());
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
}

TEST(NfdS, AlternatingLossPattern) {
  // m_1, m_3, m_5 arrive with delay 0.2; m_2, m_4 lost.
  Script s(kParams);
  for (net::SeqNo i : {1u, 3u, 5u}) {
    s.deliver(i, static_cast<double>(i) + 0.2);
  }
  s.run_to(6.4);
  // Timeline: T at 1.2; S at tau_2 = 2.5; T at 3.2; S at tau_4 = 4.5;
  // T at 5.2; (tau_6 = 6.5 beyond horizon).
  ASSERT_EQ(s.log.size(), 5u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(1.2), Verdict::kTrust}));
  EXPECT_EQ(s.log[1], (Transition{TimePoint(2.5), Verdict::kSuspect}));
  EXPECT_EQ(s.log[2], (Transition{TimePoint(3.2), Verdict::kTrust}));
  EXPECT_EQ(s.log[3], (Transition{TimePoint(4.5), Verdict::kSuspect}));
  EXPECT_EQ(s.log[4], (Transition{TimePoint(5.2), Verdict::kTrust}));
}

TEST(NfdS, DuplicateDeliveriesAreHarmless) {
  Script s(kParams);
  s.deliver(1, 1.2);
  s.deliver(1, 1.3);  // duplicate (footnote 8)
  s.run_to(2.4);
  ASSERT_EQ(s.log.size(), 1u);
}

TEST(NfdS, OutOfOrderDeliveries) {
  // m_2 overtakes m_1.
  Script s(kParams);
  s.deliver(2, 2.1);
  s.deliver(1, 2.3);  // old, ignored
  s.run_to(3.4);
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(2.1), Verdict::kTrust}));
  EXPECT_EQ(s.detector.max_seq(), 2u);
}

TEST(NfdS, DeliveryBeforeTau1TrustsImmediately) {
  // In [tau_0 = 0, tau_1) every message is fresh (i = 0, any j >= 1 > 0).
  Script s(kParams);
  s.deliver(1, 1.1);
  s.run_to(1.2);
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0].at, TimePoint(1.1));
}

TEST(NfdS, DetectionBoundHolds) {
  // All heartbeats after m_2 cease (crash); q must suspect permanently by
  // sigma_2 + delta + eta = 2 + 1.5 = 3.5 = tau_3.
  Script s(kParams);
  s.deliver(1, 1.1);
  s.deliver(2, 2.1);
  s.run_to(20.0);
  ASSERT_FALSE(s.log.empty());
  const Transition& last = s.log.back();
  EXPECT_EQ(last.to, Verdict::kSuspect);
  EXPECT_LE(last.at, TimePoint(3.5));
}

TEST(NfdS, LargerDeltaToleratesLargerDelays) {
  // delta = 2.5 -> k = 3: a message delayed by 2 periods is still caught.
  Script s(NfdSParams{Duration(1.0), Duration(2.5)});
  // m_1 delayed until 3.4 (tau_1 = 3.5): arrives just in time.
  s.deliver(1, 3.4);
  s.run_to(4.4);
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0].to, Verdict::kTrust);
  // Without further messages, suspect at tau_2 = 4.5.
  s.run_to(5.0);
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[1], (Transition{TimePoint(4.5), Verdict::kSuspect}));
}

TEST(NfdS, StaleMessageAtExactFreshnessPointDoesNotRefresh) {
  // Regression: with delta >> eta, tau_i = i*eta + delta loses low bits, so
  // (tau_i - delta)/eta can land one ULP below i and a plain floor() puts
  // the instant tau_i itself in [tau_{i-1}, tau_i).  A heartbeat m_{i-1}
  // delivered exactly at tau_i was then judged fresh and flipped the output
  // to Trust even though interval i requires j >= i.  eta=0.05, delta=1.8
  // makes tau_4 = 2.0 the smallest such instant ((2.0-1.8)/0.05 ~ 3.9999...).
  Script s(NfdSParams{Duration(0.05), Duration(1.8)});
  s.deliver(1, 1.86, 0.05);  // fresh in [tau_1, tau_2): Trust at 1.86
  s.deliver(3, 2.0, 0.05);   // stale at tau_4 = 2.0: index is 4, j = 3 < 4
  s.run_to(2.01);
  // Trust at 1.86, Suspect at tau_2 = 1.90, and nothing else — in
  // particular no spurious Trust at 2.0.
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(1.86), Verdict::kTrust}));
  EXPECT_EQ(s.log[1].to, Verdict::kSuspect);
  EXPECT_NEAR(s.log[1].at.seconds(), 1.90, 1e-9);
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
}

TEST(NfdS, RejectsInvalidParams) {
  sim::Simulator sim;
  EXPECT_THROW(NfdS(sim, NfdSParams{Duration(0.0), Duration(1.0)}),
               std::invalid_argument);
  EXPECT_THROW(NfdS(sim, NfdSParams{Duration(1.0), Duration(0.0)}),
               std::invalid_argument);
}

TEST(NfdS, ActivateTwiceThrows) {
  sim::Simulator sim;
  NfdS d(sim, kParams);
  d.activate();
  EXPECT_THROW(d.activate(), std::invalid_argument);
}

TEST(NfdS, StopCancelsFreshnessChecks) {
  Script s(kParams);
  s.deliver(1, 1.2);
  s.run_to(2.0);
  s.detector.stop();
  s.run_to(10.0);
  // No S-transition at tau_2: the detector was stopped.
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0].to, Verdict::kTrust);
}

}  // namespace
}  // namespace chenfd::core
