// Tests for the realtime ingestion front-end (DESIGN.md section 14):
// the MPSC ring, the shedding/watchdog policies, the RealtimeEngine's
// counter identity and latched risk, warm restarts, and the replay
// harness's knob-independence contract.
//
// The threaded cases (MultiProducer*, Live*) are the TSan targets: they
// exercise the producer path concurrently with a draining/stalled/killed
// consumer and assert the lock-free bookkeeping stays exact.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "service/realtime/engine.hpp"
#include "service/realtime/monotonic_clock.hpp"
#include "service/realtime/mpsc_queue.hpp"
#include "service/realtime/policies.hpp"
#include "service/realtime/replay.hpp"
#include "service/realtime/time_source.hpp"

namespace chenfd::rt {
namespace {

// ---------------------------------------------------------------------------
// MpscQueue
// ---------------------------------------------------------------------------

TEST(MpscQueue, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(64), 64u);
  EXPECT_EQ(ceil_pow2(65), 128u);
}

TEST(MpscQueue, FifoOrderAndBoundedCapacity) {
  MpscQueue<int> q(5);  // rounds up to 8
  EXPECT_EQ(q.capacity(), 8u);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: fails immediately, never blocks
  EXPECT_EQ(q.size(), 8u);

  int out = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_TRUE(q.try_push(8));  // freed slots are reusable (ring laps)

  int batch[8] = {};
  const std::size_t n = q.pop_batch(batch, 8);
  ASSERT_EQ(n, 6u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], static_cast<int>(i) + 3);
  }
  EXPECT_TRUE(q.empty());
  ASSERT_FALSE(q.try_pop(out));
}

TEST(MpscQueue, MultiProducerAccountingIsExact) {
  // TSan target: several producers race into a small ring while one
  // consumer drains.  Every push either succeeds or reports full, and the
  // consumer sees exactly the successful ones, per-producer in order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscQueue<std::uint64_t> q(64);

  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &pushed, &rejected, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t token =
            (static_cast<std::uint64_t>(p) << 32U) |
            static_cast<std::uint64_t>(i);
        if (q.try_push(token)) {
          pushed.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::uint64_t popped = 0;
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::vector<bool> seen_any(kProducers, false);
  std::thread consumer([&] {
    std::uint64_t token = 0;
    for (;;) {
      if (q.try_pop(token)) {
        ++popped;
        const auto p = static_cast<std::size_t>(token >> 32U);
        const std::uint64_t i = token & 0xffffffffULL;
        if (seen_any[p]) {
          EXPECT_GT(i, last_seen[p]);  // per-producer FIFO
        }
        last_seen[p] = i;
        seen_any[p] = true;
      } else if (done.load(std::memory_order_acquire)) {
        if (!q.try_pop(token)) break;
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(pushed.load() + rejected.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(popped, pushed.load());
  EXPECT_GT(pushed.load(), 0u);
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

TEST(RiskLatch, FirstReasonSticks) {
  RiskLatch latch;
  EXPECT_FALSE(latch.engaged());
  EXPECT_EQ(latch.reason(), RiskReason::kNone);
  EXPECT_TRUE(latch.latch(RiskReason::kOverload));
  EXPECT_FALSE(latch.latch(RiskReason::kWatchdogRestart));  // lost the race
  EXPECT_EQ(latch.reason(), RiskReason::kOverload);
  latch.reset();
  EXPECT_FALSE(latch.engaged());
  EXPECT_TRUE(latch.latch(RiskReason::kConsumerStall));
  EXPECT_EQ(latch.reason(), RiskReason::kConsumerStall);
}

TEST(Policies, Names) {
  EXPECT_STREQ(name(OverloadPolicy::kDropNewest), "drop-newest");
  EXPECT_STREQ(name(OverloadPolicy::kDropOldest), "drop-oldest");
  EXPECT_STREQ(name(OverloadPolicy::kDegradeEta), "degrade-eta");
  EXPECT_STREQ(name(RiskReason::kNone), "none");
  EXPECT_STREQ(name(RiskReason::kOverload), "overload");
  EXPECT_STREQ(name(RiskReason::kConsumerStall), "consumer-stall");
  EXPECT_STREQ(name(RiskReason::kWatchdogRestart), "watchdog-restart");
}

TEST(WatchdogPolicy, StallDetectionAndBoundedBackoff) {
  WatchdogConfig cfg;
  cfg.stall_timeout = seconds(2.0);
  cfg.backoff_base = seconds(1.0);
  cfg.backoff_cap = seconds(4.0);
  cfg.healthy_interval = seconds(10.0);
  WatchdogPolicy wd(cfg);

  // Healthy: progress recent, queue nonempty.
  wd.note_progress(TimePoint(1.0));
  EXPECT_EQ(wd.poll(TimePoint(2.0), true, true), WatchdogAction::kNone);
  // An empty queue is never a stall, no matter how stale progress is.
  EXPECT_EQ(wd.poll(TimePoint(100.0), true, false), WatchdogAction::kNone);

  // Stall: no progress for >= stall_timeout with work waiting.
  EXPECT_EQ(wd.poll(TimePoint(103.0), true, true), WatchdogAction::kRestart);
  EXPECT_EQ(wd.consecutive_restarts(), 1);
  // Inside the backoff window nothing restarts again...
  EXPECT_EQ(wd.poll(TimePoint(103.5), false, true), WatchdogAction::kBackoff);
  // ...and each restart doubles the delay: 1, 2, 4, then capped at 4.
  EXPECT_EQ(wd.poll(TimePoint(106.0), false, true), WatchdogAction::kRestart);
  EXPECT_EQ(wd.next_allowed_restart(), TimePoint(108.0));
  EXPECT_EQ(wd.poll(TimePoint(108.0), false, true), WatchdogAction::kRestart);
  EXPECT_EQ(wd.next_allowed_restart(), TimePoint(112.0));
  EXPECT_EQ(wd.poll(TimePoint(112.0), false, true), WatchdogAction::kRestart);
  EXPECT_EQ(wd.next_allowed_restart(), TimePoint(116.0));  // capped
  EXPECT_EQ(wd.consecutive_restarts(), 4);

  // A healthy_interval of progress after the last restart resets the streak.
  wd.note_progress(TimePoint(113.0));
  wd.note_progress(TimePoint(123.0));
  EXPECT_EQ(wd.consecutive_restarts(), 0);
}

TEST(WatchdogPolicy, DeadConsumerIsStalledEvenWithEmptyQueue) {
  WatchdogConfig cfg;
  cfg.stall_timeout = seconds(2.0);
  cfg.backoff_base = seconds(1.0);
  cfg.backoff_cap = seconds(4.0);
  WatchdogPolicy wd(cfg);
  wd.note_progress(TimePoint(0.5));
  EXPECT_EQ(wd.poll(TimePoint(1.0), false, false), WatchdogAction::kRestart);
}

// ---------------------------------------------------------------------------
// Engine shedding policies (deterministic, virtual time)
// ---------------------------------------------------------------------------

RealtimeOptions small_engine(OverloadPolicy policy) {
  RealtimeOptions opts;
  opts.processes = 4;
  opts.shards = 1;
  opts.params.eta = seconds(1.0);
  opts.params.alpha = seconds(2.0);
  opts.queue_capacity = 8;
  opts.policy = policy;
  return opts;
}

void expect_identity(const ShardCounters& c) {
  EXPECT_EQ(c.produced, c.accepted + c.shed_total());
}

TEST(RealtimeEngine, DropNewestShedsAtCapacityAndLatchesRisk) {
  VirtualTimeSource time;
  RealtimeEngine engine(small_engine(OverloadPolicy::kDropNewest), time);
  EXPECT_FALSE(engine.qos_at_risk());

  std::uint64_t admitted = 0;
  for (net::SeqNo seq = 1; seq <= 20; ++seq) {
    if (engine.offer(fleet::Heartbeat{0, 0, seq, TimePoint(0.01 * seq)})) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 8u);  // the logical bound, not the physical ring
  ShardCounters c = engine.counters(0);
  EXPECT_EQ(c.produced, 20u);
  EXPECT_EQ(c.shed_newest, 12u);
  EXPECT_EQ(c.shed_overflow, 0u);
  EXPECT_TRUE(engine.qos_at_risk());
  EXPECT_EQ(engine.risk_reason(), RiskReason::kOverload);
  EXPECT_EQ(engine.shard_risk(0), RiskReason::kOverload);

  time.advance(TimePoint(1.0));
  EXPECT_EQ(engine.drain_shard(0, TimePoint(1.0)), 8u);
  c = engine.counters(0);
  EXPECT_EQ(c.accepted, 8u);
  EXPECT_EQ(c.consumed, 8u);
  expect_identity(c);
  EXPECT_EQ(engine.pending(0), 0u);
  // The survivors reached the monitor: the sender is trusted.
  EXPECT_EQ(engine.verdict(0), Verdict::kTrust);
}

TEST(RealtimeEngine, DropOldestAdmitsAllAndShedsBacklogAtDrain) {
  RealtimeOptions opts = small_engine(OverloadPolicy::kDropOldest);
  opts.ring_capacity = 32;  // physical headroom so nothing overflows here
  VirtualTimeSource time;
  RealtimeEngine engine(opts, time);

  for (net::SeqNo seq = 1; seq <= 20; ++seq) {
    EXPECT_TRUE(engine.offer(fleet::Heartbeat{1, 0, seq, TimePoint(0.01 * seq)}));
  }
  EXPECT_EQ(engine.pending(0), 20u);  // everything admitted

  time.advance(TimePoint(1.0));
  // Only the newest queue_capacity items survive the drain.
  EXPECT_EQ(engine.drain_shard(0, TimePoint(1.0)), 8u);
  const ShardCounters c = engine.counters(0);
  EXPECT_EQ(c.produced, 20u);
  EXPECT_EQ(c.consumed, 20u);
  EXPECT_EQ(c.shed_oldest, 12u);
  EXPECT_EQ(c.accepted, 8u);
  expect_identity(c);
  EXPECT_EQ(engine.risk_reason(), RiskReason::kOverload);
}

TEST(RealtimeEngine, DropOldestRingOverflowIsCountedNotFatal) {
  RealtimeOptions opts = small_engine(OverloadPolicy::kDropOldest);
  opts.queue_capacity = 4;  // ring defaults to 8 slots
  VirtualTimeSource time;
  RealtimeEngine engine(opts, time);
  std::uint64_t admitted = 0;
  for (net::SeqNo seq = 1; seq <= 12; ++seq) {
    if (engine.offer(fleet::Heartbeat{0, 0, seq, TimePoint(0.01 * seq)})) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 8u);  // the ring is the memory backstop
  ShardCounters c = engine.counters(0);
  EXPECT_EQ(c.shed_overflow, 4u);
  time.advance(TimePoint(1.0));
  engine.drain_shard(0, TimePoint(1.0));
  c = engine.counters(0);
  EXPECT_EQ(c.shed_oldest, 4u);  // 8 popped, capacity 4 kept
  EXPECT_EQ(c.accepted, 4u);
  expect_identity(c);
}

TEST(RealtimeEngine, DegradeEtaThinsAboveWatermarkThenShedsAtFull) {
  RealtimeOptions opts = small_engine(OverloadPolicy::kDegradeEta);
  opts.degrade_watermark = 0.5;  // thinning starts at occupancy 4
  VirtualTimeSource time;
  RealtimeEngine engine(opts, time);

  // Sequences 1..4 fill to the watermark; above it odd sequences are
  // thinned (effective eta doubles); at full occupancy even sequences are
  // shed bounded-admit style.
  for (net::SeqNo seq = 1; seq <= 24; ++seq) {
    engine.offer(fleet::Heartbeat{2, 0, seq, TimePoint(0.01 * seq)});
  }
  ShardCounters c = engine.counters(0);
  EXPECT_EQ(c.produced, 24u);
  EXPECT_GT(c.shed_degraded, 0u);  // thinned in the watermark band
  EXPECT_GT(c.shed_newest, 0u);    // rejected at full
  EXPECT_EQ(engine.risk_reason(), RiskReason::kOverload);

  time.advance(TimePoint(1.0));
  engine.drain_shard(0, TimePoint(1.0));
  expect_identity(engine.counters(0));
}

// ---------------------------------------------------------------------------
// Engine watchdog, warm restart, latched risk
// ---------------------------------------------------------------------------

TEST(RealtimeEngine, WatchdogRestartsStalledShardAndRiskSurvivesRecovery) {
  RealtimeOptions opts = small_engine(OverloadPolicy::kDropNewest);
  opts.watchdog.stall_timeout = seconds(2.0);
  opts.watchdog.backoff_base = seconds(1.0);
  opts.watchdog.backoff_cap = seconds(4.0);
  VirtualTimeSource time;
  RealtimeEngine engine(opts, time);

  // Work arrives but nobody drains: after stall_timeout the watchdog
  // flags the (alive but stuck) consumer.
  ASSERT_TRUE(engine.offer(fleet::Heartbeat{0, 0, 1, TimePoint(0.1)}));
  EXPECT_EQ(engine.poll_watchdog(0, TimePoint(0.5), true),
            WatchdogAction::kNone);
  EXPECT_FALSE(engine.qos_at_risk());
  EXPECT_EQ(engine.poll_watchdog(0, TimePoint(3.0), true),
            WatchdogAction::kRestart);
  EXPECT_EQ(engine.risk_reason(), RiskReason::kConsumerStall);

  engine.warm_restart_shard(0, TimePoint(3.0));
  EXPECT_EQ(engine.counters(0).restarts, 1u);

  // Recovery: the queue drains fine afterwards — but the latched reason
  // must survive (operators need "was it ever degraded").
  time.advance(TimePoint(4.0));
  EXPECT_EQ(engine.drain_shard(0, TimePoint(4.0)), 1u);
  expect_identity(engine.counters(0));
  EXPECT_TRUE(engine.qos_at_risk());
  EXPECT_EQ(engine.risk_reason(), RiskReason::kConsumerStall);
}

TEST(RealtimeEngine, WarmRestartLosesNoEmittedTransitions) {
  RealtimeOptions opts = small_engine(OverloadPolicy::kDropNewest);
  VirtualTimeSource time;
  RealtimeEngine engine(opts, time);

  ASSERT_TRUE(engine.offer(fleet::Heartbeat{0, 0, 1, TimePoint(0.1)}));
  ASSERT_TRUE(engine.offer(fleet::Heartbeat{1, 0, 1, TimePoint(0.2)}));
  time.advance(TimePoint(0.5));
  engine.drain_shard(0, TimePoint(0.5));
  // The trust transitions are pending inside the monitor; a warm restart
  // must move them into the engine-side log, not drop them.
  engine.warm_restart_shard(0, TimePoint(0.6));

  const std::vector<fleet::Transition> out = engine.drain_transitions();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].at, TimePoint(0.1));
  EXPECT_EQ(out[0].process, 0u);
  EXPECT_EQ(out[0].to, Verdict::kTrust);
  EXPECT_EQ(out[1].process, 1u);
  EXPECT_EQ(engine.risk_reason(), RiskReason::kWatchdogRestart);
}

TEST(RealtimeEngine, ShardOfPartitionsBalancedAndCountersSumAcrossShards) {
  RealtimeOptions opts;
  opts.processes = 10;
  opts.shards = 3;  // 4 + 3 + 3
  opts.params.eta = seconds(1.0);
  opts.params.alpha = seconds(2.0);
  opts.queue_capacity = 4;
  VirtualTimeSource time;
  RealtimeEngine engine(opts, time);
  ASSERT_EQ(engine.shard_count(), 3u);
  EXPECT_EQ(engine.shard_of(0), 0u);
  EXPECT_EQ(engine.shard_of(3), 0u);
  EXPECT_EQ(engine.shard_of(4), 1u);
  EXPECT_EQ(engine.shard_of(6), 1u);
  EXPECT_EQ(engine.shard_of(7), 2u);
  EXPECT_EQ(engine.shard_of(9), 2u);

  for (fleet::ProcessIndex p = 0; p < 10; ++p) {
    ASSERT_TRUE(engine.offer(
        fleet::Heartbeat{p, 0, 1, TimePoint(0.1 + 0.001 * p)}));
  }
  time.advance(TimePoint(1.0));
  for (std::size_t s = 0; s < 3; ++s) engine.drain_shard(s, TimePoint(1.0));
  const ShardCounters total = engine.totals();
  EXPECT_EQ(total.produced, 10u);
  EXPECT_EQ(total.accepted, 10u);
  expect_identity(total);
  // Transitions come back in global process ids, in (time, process) order.
  const auto out = engine.drain_transitions();
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].process, static_cast<fleet::ProcessIndex>(i));
  }
}

// ---------------------------------------------------------------------------
// Epoch rebase (wall-clock timestamps must not reach the timing wheel raw)
// ---------------------------------------------------------------------------

TEST(RealtimeEngine, RebasesWallEpochTimesAndMapsTransitionsBack) {
  // A time source that starts at a wall-like epoch: without the rebase the
  // first advance would try ~1e11 wheel ticks and effectively hang.
  constexpr double kEpoch = 1.7e9;
  VirtualTimeSource time{TimePoint(kEpoch)};
  RealtimeOptions opts = small_engine(OverloadPolicy::kDropNewest);
  RealtimeEngine engine(opts, time);

  ASSERT_TRUE(engine.offer(fleet::Heartbeat{0, 0, 1, TimePoint(kEpoch + 0.5)}));
  time.advance(TimePoint(kEpoch + 1.0));
  EXPECT_EQ(engine.drain_shard(0, time.now()), 1u);
  engine.advance(time.now());
  const auto out = engine.drain_transitions();
  ASSERT_EQ(out.size(), 1u);
  // Output timestamps are in *source* time, not engine time.
  EXPECT_DOUBLE_EQ(out[0].at.seconds(), kEpoch + 0.5);
  EXPECT_EQ(out[0].to, Verdict::kTrust);
}

// ---------------------------------------------------------------------------
// Replay determinism
// ---------------------------------------------------------------------------

TEST(Replay, PayloadIsByteIdenticalAcrossKnobs) {
  const std::vector<ReplayScenario> scenarios = smoke_scenarios();
  ASSERT_FALSE(scenarios.empty());
  const ReplayScenario& sc = scenarios.front();

  const ReplayResult base = run_replay(sc, ReplayKnobs{1, 0, 64});
  EXPECT_FALSE(base.payload.empty());
  expect_identity(base.totals);

  const ReplayKnobs grid[] = {
      {2, 0, 64}, {3, 0, 1}, {1, 4096, 7}, {4, 1024, 128}};
  for (const ReplayKnobs& knobs : grid) {
    const ReplayResult r = run_replay(sc, knobs);
    EXPECT_EQ(r.payload, base.payload);
    EXPECT_EQ(r.crc, base.crc);
  }
}

TEST(Replay, SmokeScenarioOraclesHold) {
  std::ostringstream diag;
  EXPECT_TRUE(replay_smoke(diag)) << diag.str();
}

// ---------------------------------------------------------------------------
// Live mode (threaded; the TSan scenarios from ISSUE acceptance)
// ---------------------------------------------------------------------------

TEST(RealtimeLive, ProducersOutrunningStalledConsumerShedAndNeverBlock) {
  RealtimeOptions opts;
  opts.processes = 8;
  opts.shards = 2;
  opts.params.eta = seconds(1.0);
  opts.params.alpha = seconds(2.0);
  opts.queue_capacity = 16;
  opts.policy = OverloadPolicy::kDropNewest;
  VirtualTimeSource time(TimePoint(5.0));
  RealtimeEngine engine(opts, time);

  engine.start(2, seconds(0.01), seconds(0.05));
  engine.stall_consumer(0, true);
  engine.stall_consumer(1, true);

  constexpr int kProducers = 3;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto proc = static_cast<fleet::ProcessIndex>((p + i) % 8);
        engine.offer_now(proc, 0, static_cast<net::SeqNo>(i + 1));
      }
    });
  }
  // The producers finish although nobody drains: offer() never blocks.
  for (std::thread& t : producers) t.join();

  EXPECT_TRUE(engine.qos_at_risk());
  EXPECT_EQ(engine.risk_reason(), RiskReason::kOverload);

  // Un-stall, let the consumers catch up, then stop and settle.
  engine.stall_consumer(0, false);
  engine.stall_consumer(1, false);
  engine.stop();
  time.advance(TimePoint(6.0));
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    engine.drain_shard(s, time.now());
  }

  const ShardCounters total = engine.totals();
  EXPECT_EQ(total.produced,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  expect_identity(total);
  EXPECT_GT(total.shed_newest, 0u);
  // Recovery must not wash out the latched reason.
  EXPECT_TRUE(engine.qos_at_risk());
  EXPECT_EQ(engine.risk_reason(), RiskReason::kOverload);
}

TEST(RealtimeLive, KilledConsumerIsRespawnedWithinBackoffBound) {
  RealtimeOptions opts;
  opts.processes = 4;
  opts.shards = 1;
  opts.params.eta = seconds(1.0);
  opts.params.alpha = seconds(2.0);
  opts.queue_capacity = 64;
  opts.watchdog.stall_timeout = seconds(0.05);
  opts.watchdog.backoff_base = seconds(0.05);
  opts.watchdog.backoff_cap = seconds(0.2);
  MonotonicClock clock;
  RealtimeEngine engine(opts, clock);

  engine.start(1, seconds(0.002), seconds(0.01));
  engine.kill_consumer(0);
  // Keep work visible so the dead consumer counts as stalled.
  ASSERT_TRUE(engine.offer_now(0, 0, 1));

  // The watchdog must warm-restart and respawn within the backoff bound;
  // allow generous wall slack for CI, but the expected latency is
  // stall-detection + one backoff step (well under a second).
  const TimePoint deadline = clock.now() + seconds(10.0);
  while (engine.counters(0).restarts == 0 && clock.now() < deadline) {
    clock.sleep_for(seconds(0.005));
  }
  EXPECT_GE(engine.counters(0).restarts, 1u);
  EXPECT_EQ(engine.risk_reason(), RiskReason::kWatchdogRestart);

  // The respawned consumer makes progress again: the queued heartbeat and
  // fresh ones get consumed.
  ASSERT_TRUE(engine.offer_now(1, 0, 1));
  while (engine.totals().consumed < 2 && clock.now() < deadline) {
    clock.sleep_for(seconds(0.005));
  }
  EXPECT_GE(engine.totals().consumed, 2u);

  engine.stop();
  expect_identity(engine.totals());
}

// ---------------------------------------------------------------------------
// Option validation
// ---------------------------------------------------------------------------

TEST(RealtimeOptions, ValidateRejectsMisuse) {
  RealtimeOptions opts = small_engine(OverloadPolicy::kDropNewest);
  opts.shards = 8;  // more shards than processes
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = small_engine(OverloadPolicy::kDropNewest);
  opts.queue_capacity = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = small_engine(OverloadPolicy::kDropNewest);
  opts.ring_capacity = 4;  // < queue_capacity
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = small_engine(OverloadPolicy::kDropNewest);
  opts.degrade_watermark = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = small_engine(OverloadPolicy::kDropNewest);
  opts.watchdog.backoff_cap = seconds(0.1);  // < base
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::rt
