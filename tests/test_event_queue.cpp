// Unit tests for the cancellable event queue.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace chenfd::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(3.0), [&] { order.push_back(3); });
  q.schedule(TimePoint(1.0), [&] { order.push_back(1); });
  q.schedule(TimePoint(2.0), [&] { order.push_back(2); });
  while (auto ev = q.pop()) ev->second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongSameTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1.0), [&] { order.push_back(10); });
  q.schedule(TimePoint(1.0), [&] { order.push_back(20); });
  q.schedule(TimePoint(1.0), [&] { order.push_back(30); });
  while (auto ev = q.pop()) ev->second();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(TimePoint(1.0), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterRunFails) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint(1.0), [] {});
  auto ev = q.pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint(1.0), [] {});
  q.schedule(TimePoint(2.0), [] {});
  EXPECT_EQ(q.next_time(), TimePoint(1.0));
  q.cancel(early);
  EXPECT_EQ(q.next_time(), TimePoint(2.0));
}

TEST(EventQueue, PendingCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.schedule(TimePoint(1.0), [] {});
  q.schedule(TimePoint(2.0), [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  (void)q.pop();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(TimePoint(static_cast<double>(100 - i)), [] {}));
  }
  for (int i = 0; i < 100; i += 2) q.cancel(ids[i]);
  int count = 0;
  TimePoint prev = TimePoint::zero();
  while (auto ev = q.pop()) {
    EXPECT_GE(ev->first, prev);
    prev = ev->first;
    ++count;
  }
  EXPECT_EQ(count, 50);
}

}  // namespace
}  // namespace chenfd::sim
