// Unit tests for the cancellable event queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"

namespace chenfd::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(3.0), [&] { order.push_back(3); });
  q.schedule(TimePoint(1.0), [&] { order.push_back(1); });
  q.schedule(TimePoint(2.0), [&] { order.push_back(2); });
  while (auto ev = q.pop()) ev->second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongSameTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1.0), [&] { order.push_back(10); });
  q.schedule(TimePoint(1.0), [&] { order.push_back(20); });
  q.schedule(TimePoint(1.0), [&] { order.push_back(30); });
  while (auto ev = q.pop()) ev->second();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(TimePoint(1.0), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterRunFails) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint(1.0), [] {});
  auto ev = q.pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint(1.0), [] {});
  q.schedule(TimePoint(2.0), [] {});
  EXPECT_EQ(q.next_time(), TimePoint(1.0));
  q.cancel(early);
  EXPECT_EQ(q.next_time(), TimePoint(2.0));
}

TEST(EventQueue, PendingCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.schedule(TimePoint(1.0), [] {});
  q.schedule(TimePoint(2.0), [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  (void)q.pop();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelHeavyWorkloadKeepsHeapBounded) {
  // Regression: an adaptive detector reschedules its deadline on every
  // heartbeat (schedule + cancel), which used to accumulate one dead heap
  // entry per heartbeat for the whole run.  The queue must compact, keeping
  // the heap within a constant factor of the live event count.
  EventQueue q;
  constexpr std::size_t kLive = 4;
  std::vector<EventId> deadlines;
  for (std::size_t i = 0; i < kLive; ++i) {
    deadlines.push_back(
        q.schedule(TimePoint(1e9 + static_cast<double>(i)), [] {}));
  }
  std::size_t peak_heap = 0;
  for (int hb = 0; hb < 100'000; ++hb) {
    // Reschedule every deadline, as an adaptive detector does per heartbeat.
    for (auto& id : deadlines) {
      EXPECT_TRUE(q.cancel(id));
      id = q.schedule(TimePoint(1e9 + static_cast<double>(hb)), [] {});
    }
    peak_heap = std::max(peak_heap, q.heap_size());
  }
  EXPECT_EQ(q.pending(), kLive);
  // Bound: dead entries never exceed max(live, compaction floor).
  EXPECT_LE(peak_heap, 2 * std::max<std::size_t>(kLive, 64) + kLive);
  while (auto ev = q.pop()) ev->second();  // still pops cleanly
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CompactionPreservesOrderAndLiveEvents) {
  EventQueue q;
  std::vector<EventId> dead;
  std::vector<int> order;
  for (int i = 0; i < 300; ++i) {
    if (i % 3 == 0) {
      q.schedule(TimePoint(static_cast<double>(1000 - i)),
                 [&order, i] { order.push_back(i); });
    } else {
      dead.push_back(q.schedule(TimePoint(static_cast<double>(i)), [] {}));
    }
  }
  for (const EventId id : dead) EXPECT_TRUE(q.cancel(id));
  EXPECT_LE(q.heap_size(), 2 * q.pending() + 1);
  int count = 0;
  TimePoint prev = TimePoint::zero();
  while (auto ev = q.pop()) {
    EXPECT_GE(ev->first, prev);
    prev = ev->first;
    ev->second();
    ++count;
  }
  EXPECT_EQ(count, 100);
  EXPECT_EQ(order.size(), 100u);
}

TEST(EventQueue, CancelThenDrainKeepsHeapBounded) {
  // Regression: compaction used to run only from cancel().  A workload that
  // cancels a large batch (not enough to trip compaction while the live set
  // is big) and then drains the live events via pop() shrinks pending()
  // without touching the dead majority — the bound must keep holding as the
  // live set shrinks, which requires pop()/skip_dead() to compact too.
  EventQueue q;
  constexpr std::size_t kLive = 400;
  constexpr std::size_t kDead = 350;  // <= kLive: cancel alone won't compact
  for (std::size_t i = 0; i < kLive; ++i) {
    q.schedule(TimePoint(static_cast<double>(i)), [] {});
  }
  std::vector<EventId> dead;
  for (std::size_t i = 0; i < kDead; ++i) {
    dead.push_back(
        q.schedule(TimePoint(1e6 + static_cast<double>(i)), [] {}));
  }
  for (const EventId id : dead) ASSERT_TRUE(q.cancel(id));

  std::size_t drained = 0;
  TimePoint prev = TimePoint::zero();
  while (auto ev = q.pop()) {
    EXPECT_GE(ev->first, prev);
    prev = ev->first;
    ++drained;
    const std::size_t bound =
        std::max<std::size_t>(2 * q.pending() + 1, 64);
    EXPECT_LE(q.heap_size(), bound)
        << "after draining " << drained << " events";
  }
  EXPECT_EQ(drained, kLive);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.heap_size(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(TimePoint(static_cast<double>(100 - i)), [] {}));
  }
  for (int i = 0; i < 100; i += 2) q.cancel(ids[i]);
  int count = 0;
  TimePoint prev = TimePoint::zero();
  while (auto ev = q.pop()) {
    EXPECT_GE(ev->first, prev);
    prev = ev->first;
    ++count;
  }
  EXPECT_EQ(count, 50);
}

}  // namespace
}  // namespace chenfd::sim
