// Theorem 6 (optimality of NFD-S): among all detectors sending heartbeats
// every eta and guaranteeing T_D <= T_D^U, the NFD-S instance with
// delta = T_D^U - eta has the best query accuracy probability.
//
// We verify both the theorem's aggregate claim (P_A of A* dominates) and
// the pathwise property behind it (Lemma 19: whenever A* suspects, every
// same-class detector on the same delay pattern suspects too), by running
// all candidates attached to the SAME testbed so they observe identical
// heartbeat deliveries.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"

namespace chenfd::core {
namespace {

struct Candidate {
  std::string name;
  std::unique_ptr<FailureDetector> detector;
  std::vector<Transition> log;
};

/// Runs A* (NFD-S with delta = T - eta) plus same-class competitors on one
/// shared heartbeat/delivery pattern.  Returns candidates; index 0 is A*.
std::vector<Candidate> run_class_c(double t_du, double p_loss,
                                   std::uint64_t seed, double horizon) {
  Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.loss = std::make_unique<net::BernoulliLoss>(p_loss);
  cfg.eta = seconds(1.0);
  cfg.seed = seed;
  Testbed tb(std::move(cfg));

  std::vector<Candidate> cands;
  const auto add = [&](std::string name,
                       std::unique_ptr<FailureDetector> det) {
    cands.push_back(Candidate{std::move(name), std::move(det), {}});
  };
  // A*: the optimal freshness shift.
  add("A*", std::make_unique<NfdS>(tb.simulator(),
                                   NfdSParams{Duration(1.0),
                                              Duration(t_du - 1.0)}));
  // NFD-S with a smaller (suboptimal) delta — still in class C.
  add("NFD-S(half-delta)",
      std::make_unique<NfdS>(tb.simulator(),
                             NfdSParams{Duration(1.0),
                                        Duration((t_du - 1.0) / 2.0)}));
  // SFD-L and SFD-S with cutoff + TO summing to T_D^U — also in class C.
  add("SFD-L", std::make_unique<Sfd>(tb.simulator(), tb.q_clock(),
                                     SfdParams{Duration(t_du - 0.16),
                                               Duration(0.16)}));
  add("SFD-S", std::make_unique<Sfd>(tb.simulator(), tb.q_clock(),
                                     SfdParams{Duration(t_du - 0.08),
                                               Duration(0.08)}));

  for (auto& c : cands) {
    tb.attach(*c.detector);
    auto* log = &c.log;
    c.detector->add_listener(
        [log](const Transition& t) { log->push_back(t); });
  }
  tb.start();
  tb.simulator().run_until(TimePoint(horizon));
  return cands;
}

TEST(Optimality, AStarHasBestQueryAccuracy) {
  const double t_du = 2.0;
  const double horizon = 200000.0;
  const auto cands = run_class_c(t_du, 0.02, 3001, horizon);
  const TimePoint start(100.0);
  const TimePoint end(horizon);
  const double pa_star =
      qos::replay(cands[0].log, start, end).query_accuracy();
  for (std::size_t i = 1; i < cands.size(); ++i) {
    const double pa =
        qos::replay(cands[i].log, start, end).query_accuracy();
    EXPECT_GE(pa_star + 1e-12, pa) << cands[i].name;
  }
}

TEST(Optimality, Lemma19PathwiseDomination) {
  // Whenever A* suspects at t (>= T_D^U), every same-class candidate on
  // the same delivery pattern suspects at t.
  const double t_du = 2.0;
  const double horizon = 50000.0;
  const auto cands = run_class_c(t_du, 0.05, 3002, horizon);

  // Reconstruct each output signal and compare at the S-intervals of A*.
  const auto verdict_at = [](const std::vector<Transition>& log, double t) {
    Verdict v = Verdict::kSuspect;
    for (const auto& tr : log) {
      if (tr.at.seconds() > t) break;
      v = tr.to;
    }
    return v;
  };

  // Sample a grid plus the midpoints of A*'s suspicion intervals.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < cands[0].log.size(); ++i) {
    const auto& tr = cands[0].log[i];
    if (tr.to != Verdict::kSuspect) continue;
    const double s_begin = tr.at.seconds();
    const double s_end = (i + 1 < cands[0].log.size())
                             ? cands[0].log[i + 1].at.seconds()
                             : horizon;
    const double mid = (s_begin + s_end) / 2.0;
    if (mid < t_du) continue;
    for (std::size_t c = 1; c < cands.size(); ++c) {
      EXPECT_EQ(verdict_at(cands[c].log, mid), Verdict::kSuspect)
          << cands[c].name << " trusts at " << mid
          << " while A* suspects (violates Lemma 19)";
    }
    ++checked;
  }
  EXPECT_GT(checked, 100u);  // the run must actually contain mistakes
}

TEST(Optimality, HoldsAcrossSeedsAndBudgets) {
  for (const double t_du : {1.5, 2.5, 3.0}) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      const auto cands = run_class_c(t_du, 0.03, seed, 60000.0);
      const TimePoint start(100.0);
      const TimePoint end(60000.0);
      const double pa_star =
          qos::replay(cands[0].log, start, end).query_accuracy();
      for (std::size_t i = 1; i < cands.size(); ++i) {
        EXPECT_GE(pa_star + 1e-12,
                  qos::replay(cands[i].log, start, end).query_accuracy())
            << cands[i].name << " t_du=" << t_du << " seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace chenfd::core
