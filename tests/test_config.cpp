// Tests for the Section 4 / 5 / 6 configuration procedures, pinned to the
// paper's worked examples:
//
//   Section 4 (known exponential D):  eta = 9.97 s, delta = 20.03 s
//   Section 5 (only moments known):   eta = 9.71 s, delta = 20.29 s
//
// with requirements T_D^U = 30 s, T_MR^L = 30 days, T_M^U = 60 s, and
// p_L = 0.01, E(D) = 0.02 s (V(D) = 0.02 for Section 5).

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/chebyshev.hpp"
#include "core/config.hpp"
#include "dist/constant.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"

namespace chenfd::core {
namespace {

qos::Requirements paper_requirements() {
  return qos::Requirements{seconds(30.0), days(30.0), seconds(60.0)};
}

TEST(ConfigureExact, ReproducesSection4Example) {
  dist::Exponential d(0.02);
  const auto out = configure_exact(paper_requirements(), 0.01, d);
  ASSERT_TRUE(out.achievable());
  EXPECT_NEAR(out.params->eta.seconds(), 9.97, 0.02);
  EXPECT_NEAR(out.params->delta.seconds(), 20.03, 0.02);
  EXPECT_NEAR(out.params->eta.seconds() + out.params->delta.seconds(), 30.0,
              1e-9);
}

TEST(ConfigureExact, OutputSatisfiesRequirements) {
  // Theorem 7 part 1: the output parameters meet the QoS per the exact
  // Theorem 5 analysis.
  dist::Exponential d(0.02);
  const auto req = paper_requirements();
  const auto out = configure_exact(req, 0.01, d);
  ASSERT_TRUE(out.achievable());
  NfdSAnalysis a(*out.params, 0.01, d);
  EXPECT_TRUE(a.figures().satisfies(req));
}

TEST(ConfigureExact, SatisfiesAcrossFamilies) {
  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    const auto req = paper_requirements();
    const auto out = configure_exact(req, 0.01, *d);
    ASSERT_TRUE(out.achievable()) << d->name();
    NfdSAnalysis a(*out.params, 0.01, *d);
    EXPECT_TRUE(a.figures().satisfies(req)) << d->name();
  }
}

TEST(ConfigureExact, UnachievableWhenNothingArrivesInTime) {
  // Every message takes 50 s > T_D^U = 30 s: q0' = 0 (Theorem 7 part 2).
  dist::Constant d(50.0);
  const auto out = configure_exact(paper_requirements(), 0.0, d);
  EXPECT_FALSE(out.achievable());
  EXPECT_FALSE(out.reason.empty());
}

TEST(ConfigureExact, UnachievableWhenAllMessagesLost) {
  dist::Exponential d(0.02);
  const auto out = configure_exact(paper_requirements(), 1.0, d);
  EXPECT_FALSE(out.achievable());
}

TEST(ConfigureExact, TighterRecurrenceShrinksEta) {
  dist::Exponential d(0.02);
  auto req = paper_requirements();
  const auto base = configure_exact(req, 0.01, d);
  req.mistake_recurrence_lower = days(365.0);
  const auto strict = configure_exact(req, 0.01, d);
  ASSERT_TRUE(base.achievable());
  ASSERT_TRUE(strict.achievable());
  EXPECT_LT(strict.params->eta.seconds(), base.params->eta.seconds());
}

TEST(ConfigureExact, EasyRequirementsUseEtaMax) {
  // With a very lax T_MR^L, Step 2 accepts eta_max = q0' * T_M^U directly.
  dist::Exponential d(0.02);
  qos::Requirements req{seconds(30.0), seconds(10.0), seconds(10.0)};
  const auto out = configure_exact(req, 0.0, d);
  ASSERT_TRUE(out.achievable());
  const double q0p = 1.0 * d.cdf(30.0);
  // eta_max carries the configurator's 1e-6 relative safety margin.
  EXPECT_NEAR(out.params->eta.seconds(), q0p * 10.0, 2e-5);
}

TEST(ConfigureExact, Proposition8BoundDominatesChosenEta) {
  dist::Exponential d(0.02);
  const auto req = paper_requirements();
  const auto out = configure_exact(req, 0.01, d);
  ASSERT_TRUE(out.achievable());
  EXPECT_LE(out.params->eta, max_eta_bound(req, 0.01, d));
}

TEST(ConfigureFromMoments, ReproducesSection5Example) {
  const auto out =
      configure_from_moments(paper_requirements(), 0.01, 0.02, 0.02);
  ASSERT_TRUE(out.achievable());
  EXPECT_NEAR(out.params->eta.seconds(), 9.71, 0.02);
  EXPECT_NEAR(out.params->delta.seconds(), 20.29, 0.02);
}

TEST(ConfigureFromMoments, MoreConservativeThanExact) {
  // Not knowing the distribution costs bandwidth: eta shrinks from 9.97
  // to 9.71 in the paper's example.
  dist::Exponential d(0.02);
  const auto exact = configure_exact(paper_requirements(), 0.01, d);
  const auto moments = configure_from_moments(paper_requirements(), 0.01,
                                              d.mean(), 0.02);
  ASSERT_TRUE(exact.achievable());
  ASSERT_TRUE(moments.achievable());
  EXPECT_LT(moments.params->eta.seconds(), exact.params->eta.seconds());
}

TEST(ConfigureFromMoments, OutputSatisfiesTheorem9Bounds) {
  // Theorem 10 part 1, verified through the Theorem 9 bounds themselves.
  const auto req = paper_requirements();
  const auto out = configure_from_moments(req, 0.01, 0.02, 0.02);
  ASSERT_TRUE(out.achievable());
  const auto bounds = nfd_s_bounds(*out.params, 0.01, 0.02, 0.02);
  EXPECT_GE(bounds.mistake_recurrence_lower, req.mistake_recurrence_lower);
  EXPECT_LE(bounds.mistake_duration_upper, req.mistake_duration_upper);
  EXPECT_LE((out.params->eta + out.params->delta).seconds(),
            req.detection_time_upper.seconds() * (1.0 + 1e-12));
}

TEST(ConfigureFromMoments, OutputSatisfiesExactAnalysisForAllFamilies) {
  // Stronger check: for every distribution with these moments, the chosen
  // parameters satisfy the requirements per the exact analysis.
  const auto req = paper_requirements();
  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    const auto out =
        configure_from_moments(req, 0.01, d->mean(), d->variance());
    ASSERT_TRUE(out.achievable()) << d->name();
    NfdSAnalysis a(*out.params, 0.01, *d);
    EXPECT_TRUE(a.figures().satisfies(req)) << d->name();
  }
}

TEST(ConfigureFromMoments, RequiresDetectionAboveMeanDelay) {
  EXPECT_THROW((void)configure_from_moments(
                   qos::Requirements{seconds(0.01), days(1.0), seconds(60.0)},
                   0.01, 0.02, 0.02),
               std::invalid_argument);
}

TEST(ConfigureNfdU, MatchesSection5WithShiftedBound) {
  // Section 6's procedure with T_D^u = T_D^U - E(D) is numerically the
  // Section 5 procedure, so the paper's example transfers: eta = 9.71,
  // alpha = 29.98 - 9.71 = 20.27.
  RelativeRequirements req{seconds(29.98), days(30.0), seconds(60.0)};
  const auto out = configure_nfd_u(req, 0.01, 0.02);
  ASSERT_TRUE(out.achievable());
  EXPECT_NEAR(out.params->eta.seconds(), 9.71, 0.02);
  EXPECT_NEAR(out.params->alpha.seconds(), 20.27, 0.02);
}

TEST(ConfigureNfdU, OutputSatisfiesTheorem11Bounds) {
  RelativeRequirements req{seconds(29.98), days(30.0), seconds(60.0)};
  const auto out = configure_nfd_u(req, 0.01, 0.02);
  ASSERT_TRUE(out.achievable());
  const auto bounds = nfd_u_bounds(*out.params, 0.01, 0.02);
  EXPECT_GE(bounds.mistake_recurrence_lower.seconds(),
            req.mistake_recurrence_lower.seconds());
  EXPECT_LE(bounds.mistake_duration_upper.seconds(),
            req.mistake_duration_upper.seconds());
  EXPECT_LE((out.params->eta + out.params->alpha).seconds(),
            req.detection_time_upper_rel.seconds() * (1.0 + 1e-12));
}

TEST(ConfigureNfdU, HandlesVeryDemandingRecurrence) {
  // A 100-year MTBM forces a much smaller eta but must still succeed.
  RelativeRequirements req{seconds(29.98), days(36500.0), seconds(60.0)};
  const auto out = configure_nfd_u(req, 0.01, 0.02);
  ASSERT_TRUE(out.achievable());
  const auto bounds = nfd_u_bounds(*out.params, 0.01, 0.02);
  EXPECT_GE(bounds.mistake_recurrence_lower.seconds(),
            req.mistake_recurrence_lower.seconds());
}

TEST(ConfigureNfdU, InvalidRequirementsThrow) {
  EXPECT_THROW((void)configure_nfd_u(
                   RelativeRequirements{seconds(0.0), days(1.0), seconds(1.0)},
                   0.01, 0.02),
               std::invalid_argument);
}

TEST(ConfigOutcome, ReasonOnlyWhenUnachievable) {
  dist::Exponential d(0.02);
  const auto good = configure_exact(paper_requirements(), 0.01, d);
  EXPECT_TRUE(good.achievable());
  EXPECT_TRUE(good.reason.empty());
}

}  // namespace
}  // namespace chenfd::core
