// Behavioural tests of NFD-U (Fig. 9): freshness points from expected
// arrival times, no synchronized clocks.

#include <gtest/gtest.h>

#include <vector>

#include "clock/clock.hpp"
#include "core/nfd_u.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {
namespace {

constexpr double kEta = 1.0;
constexpr double kMeanDelay = 0.1;
constexpr double kQSkew = 5.0;  // q's clock runs 5s ahead of real time

net::Message hb(net::SeqNo seq) {
  net::Message m;
  m.seq = seq;
  m.sent_real = TimePoint(kEta * static_cast<double>(seq));
  // p's local clock == real time in these tests.
  m.sender_timestamp = m.sent_real;
  return m;
}

struct Script {
  sim::Simulator sim;
  clk::OffsetClock q_clock{Duration(kQSkew)};
  NfdU detector;
  std::vector<Transition> log;

  explicit Script(Duration alpha)
      : detector(sim, q_clock, NfdUParams{Duration(kEta), alpha},
                 // True expected arrival time of m_seq on q's local clock:
                 // EA_seq = sigma_seq + E(D) + skew.
                 [](net::SeqNo seq) {
                   return TimePoint(kEta * static_cast<double>(seq) +
                                    kMeanDelay + kQSkew);
                 }) {
    detector.add_listener([this](const Transition& t) { log.push_back(t); });
    detector.activate();
  }

  void deliver(net::SeqNo seq, double real_at) {
    sim.at(TimePoint(real_at), [this, seq, real_at] {
      detector.on_heartbeat(hb(seq), TimePoint(real_at));
    });
  }

  void run_to(double t) { sim.run_until(TimePoint(t)); }
};

TEST(NfdU, InitiallySuspects) {
  Script s(Duration(0.5));
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
}

TEST(NfdU, TrustsOnFreshMessageUntilDeadline) {
  // alpha = 0.5: tau_{i} = EA_i + 0.5 (local) = i + 0.6 + skew; in REAL
  // time the deadline for m_2 is at 2.6.
  Script s(Duration(0.5));
  s.deliver(1, 1.1);
  s.run_to(2.0);
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(1.1), Verdict::kTrust}));
  // No m_2: the freshness deadline tau_2 (real 2.6) fires.
  s.run_to(3.0);
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[1].to, Verdict::kSuspect);
  EXPECT_NEAR(s.log[1].at.seconds(), 2.6, 1e-9);
}

TEST(NfdU, SteadyStreamNeverSuspects) {
  Script s(Duration(0.5));
  for (net::SeqNo i = 1; i <= 10; ++i) {
    s.deliver(i, static_cast<double>(i) + 0.1);
  }
  s.run_to(10.5);
  ASSERT_EQ(s.log.size(), 1u);  // single T-transition at 1.1
  EXPECT_EQ(s.detector.output(), Verdict::kTrust);
}

TEST(NfdU, RecoversAfterLoss) {
  Script s(Duration(0.5));
  s.deliver(1, 1.1);
  // m_2 lost; m_3 arrives at 3.1.
  s.deliver(3, 3.1);
  s.run_to(4.0);
  // T at 1.1, S at 2.6 (deadline for m_2), T at 3.1.
  ASSERT_EQ(s.log.size(), 3u);
  EXPECT_EQ(s.log[1].to, Verdict::kSuspect);
  EXPECT_EQ(s.log[2], (Transition{TimePoint(3.1), Verdict::kTrust}));
}

TEST(NfdU, StaleNewestMessageDoesNotTrust) {
  // m_1 arrives after its successor's freshness point has passed:
  // tau_2 (real) = 2.6; m_1 at 2.9 with no other messages -> q should
  // remain suspecting.
  Script s(Duration(0.5));
  s.deliver(1, 2.9);
  s.run_to(3.5);
  EXPECT_TRUE(s.log.empty());
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
}

TEST(NfdU, DuplicatesIgnored) {
  Script s(Duration(0.5));
  s.deliver(1, 1.1);
  s.deliver(1, 1.2);
  s.run_to(2.0);
  EXPECT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.detector.max_seq(), 1u);
}

TEST(NfdU, OutOfOrderOldMessageIgnored) {
  Script s(Duration(0.5));
  s.deliver(2, 2.05);
  s.deliver(1, 2.2);  // late m_1: must not shrink the deadline
  s.run_to(3.0);
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(2.05), Verdict::kTrust}));
  // Deadline is tau_3 = 3.6 real: the suspect at 3.6 is outside run_to(3).
  s.run_to(3.7);
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_NEAR(s.log[1].at.seconds(), 3.6, 1e-9);
}

TEST(NfdU, DetectionBoundRelative) {
  // After the last heartbeat m_2, q suspects permanently by
  // EA_3 + alpha = sigma_3 + E(D) + alpha (real): 3 + 0.1 + 0.5 = 3.6,
  // i.e. within eta + alpha + E(D) of the crash (Section 6.2).
  Script s(Duration(0.5));
  s.deliver(1, 1.1);
  s.deliver(2, 2.1);
  s.run_to(20.0);
  ASSERT_FALSE(s.log.empty());
  EXPECT_EQ(s.log.back().to, Verdict::kSuspect);
  EXPECT_NEAR(s.log.back().at.seconds(), 3.6, 1e-9);
}

TEST(NfdU, SetParamsAdjustsFutureDeadlines) {
  Script s(Duration(0.5));
  s.deliver(1, 1.1);
  s.run_to(1.5);
  s.detector.set_params(NfdUParams{Duration(kEta), Duration(2.0)});
  s.deliver(2, 2.1);
  s.run_to(5.2);
  // Deadline for m_3 with the new alpha: 3 + 0.1 + 2.0 = 5.1 real.
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_NEAR(s.log[1].at.seconds(), 5.1, 1e-9);
  EXPECT_EQ(s.log[1].to, Verdict::kSuspect);
}

TEST(NfdU, StopCancelsDeadline) {
  Script s(Duration(0.5));
  s.deliver(1, 1.1);
  s.run_to(1.5);
  s.detector.stop();
  s.run_to(10.0);
  EXPECT_EQ(s.log.size(), 1u);  // no suspect after stop
}

TEST(NfdU, RejectsInvalidParams) {
  sim::Simulator sim;
  clk::SynchronizedClock clock;
  EXPECT_THROW(NfdU(sim, clock, NfdUParams{Duration(0.0), Duration(1.0)},
                    [](net::SeqNo) { return TimePoint::zero(); }),
               std::invalid_argument);
  EXPECT_THROW(NfdU(sim, clock, NfdUParams{Duration(1.0), Duration(0.0)},
                    [](net::SeqNo) { return TimePoint::zero(); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::core
