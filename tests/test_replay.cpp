// Unit tests for qos::replay (windowed measurement over a transition log).

#include <gtest/gtest.h>

#include <vector>

#include "qos/replay.hpp"

namespace chenfd::qos {
namespace {

using chenfd::TimePoint;
using chenfd::Transition;
using chenfd::Verdict;

std::vector<Transition> square_wave() {
  // Trust at odd seconds, suspect at even seconds, for t in [1, 20].
  std::vector<Transition> ts;
  for (int t = 1; t <= 20; ++t) {
    ts.push_back(Transition{TimePoint(static_cast<double>(t)),
                            t % 2 == 1 ? Verdict::kTrust : Verdict::kSuspect});
  }
  return ts;
}

TEST(Replay, FullWindow) {
  const auto ts = square_wave();
  Recorder rec = replay(ts, TimePoint(0.0), TimePoint(21.0));
  EXPECT_EQ(rec.s_transitions(), 10u);
  EXPECT_EQ(rec.t_transitions(), 10u);
}

TEST(Replay, InfersInitialVerdictFromPrefix) {
  const auto ts = square_wave();
  // Window starts at t = 5.5: the last prefix transition is T at t = 5.
  Recorder rec = replay(ts, TimePoint(5.5), TimePoint(20.5));
  EXPECT_EQ(rec.current(), Verdict::kSuspect);  // ends suspecting (t=20 is S)
  // S-transitions in (5.5, 20.5]: at 6, 8, ..., 20 -> 8 of them.
  EXPECT_EQ(rec.s_transitions(), 8u);
}

TEST(Replay, DefaultInitialIsSuspect) {
  const std::vector<Transition> ts = {
      Transition{TimePoint(3.0), Verdict::kTrust}};
  Recorder rec = replay(ts, TimePoint(0.0), TimePoint(10.0));
  // Suspect on [0,3), trust on [3,10]: P_A = 0.7.
  EXPECT_DOUBLE_EQ(rec.query_accuracy(), 0.7);
}

TEST(Replay, TransitionExactlyAtStartBecomesInitialState) {
  const std::vector<Transition> ts = {
      Transition{TimePoint(5.0), Verdict::kTrust},
      Transition{TimePoint(7.0), Verdict::kSuspect}};
  Recorder rec = replay(ts, TimePoint(5.0), TimePoint(10.0));
  // The t=5 transition is absorbed into the initial verdict.
  EXPECT_EQ(rec.t_transitions(), 0u);
  EXPECT_EQ(rec.s_transitions(), 1u);
  EXPECT_DOUBLE_EQ(rec.query_accuracy(), 2.0 / 5.0);
}

TEST(Replay, TransitionsAfterEndAreIgnored) {
  const std::vector<Transition> ts = {
      Transition{TimePoint(1.0), Verdict::kTrust},
      Transition{TimePoint(50.0), Verdict::kSuspect}};
  Recorder rec = replay(ts, TimePoint(0.0), TimePoint(10.0));
  EXPECT_EQ(rec.s_transitions(), 0u);
  EXPECT_DOUBLE_EQ(rec.query_accuracy(), 0.9);
}

TEST(Replay, EmptyLog) {
  Recorder rec = replay({}, TimePoint(0.0), TimePoint(10.0));
  EXPECT_EQ(rec.s_transitions(), 0u);
  EXPECT_DOUBLE_EQ(rec.query_accuracy(), 0.0);  // suspect throughout
}

}  // namespace
}  // namespace chenfd::qos
