// Tests for the delay distribution library: exact closed forms per family,
// plus parameterized property tests (sampling consistency, CDF sanity)
// applied to every family.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "dist/constant.hpp"
#include "dist/empirical.hpp"
#include "dist/erlang.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/shifted.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"
#include "stats/online_stats.hpp"

namespace chenfd::dist {
namespace {

TEST(Exponential, ClosedForms) {
  Exponential d(0.02);  // the paper's E(D)
  EXPECT_DOUBLE_EQ(d.mean(), 0.02);
  EXPECT_DOUBLE_EQ(d.variance(), 4e-4);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_NEAR(d.cdf(0.02), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.tail(0.1), std::exp(-5.0), 1e-12);
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
}

TEST(Uniform, ClosedForms) {
  Uniform d(1.0, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 4.0 / 12.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(3.5), 1.0);
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Constant, AtomSemantics) {
  Constant d(0.5);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  // Pr(D <= 0.5) = 1 but Pr(D < 0.5) = 0 — the q_0 distinction.
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf_strict(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf_strict(0.500001), 1.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 0.5);
}

TEST(LogNormal, MomentMatching) {
  const auto d = LogNormal::with_moments(0.02, 4e-4);
  EXPECT_NEAR(d.mean(), 0.02, 1e-12);
  EXPECT_NEAR(d.variance(), 4e-4, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  // Median of a lognormal is exp(mu).
  EXPECT_NEAR(d.cdf(std::exp(d.mu())), 0.5, 1e-12);
}

TEST(Pareto, ClosedForms) {
  Pareto d(1.0, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 1.5);
  EXPECT_DOUBLE_EQ(d.variance(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_NEAR(d.tail(2.0), 0.125, 1e-12);
  EXPECT_THROW(Pareto(1.0, 2.0), std::invalid_argument);  // infinite variance
}

TEST(Pareto, WithMean) {
  const auto d = Pareto::with_mean(0.02, 2.5);
  EXPECT_NEAR(d.mean(), 0.02, 1e-12);
}

TEST(Weibull, ExponentialSpecialCase) {
  // k = 1 reduces to Exponential(lambda).
  Weibull w(1.0, 0.02);
  Exponential e(0.02);
  EXPECT_NEAR(w.mean(), e.mean(), 1e-12);
  EXPECT_NEAR(w.variance(), e.variance(), 1e-12);
  for (double x : {0.0, 0.01, 0.05, 0.2}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(Erlang, OneStageIsExponential) {
  Erlang er(1, 50.0);
  Exponential e(0.02);
  EXPECT_NEAR(er.mean(), e.mean(), 1e-12);
  for (double x : {0.01, 0.02, 0.1}) EXPECT_NEAR(er.cdf(x), e.cdf(x), 1e-12);
}

TEST(Erlang, WithMean) {
  const auto d = Erlang::with_mean(4, 0.02);
  EXPECT_NEAR(d.mean(), 0.02, 1e-12);
  EXPECT_NEAR(d.variance(), 0.02 * 0.02 / 4.0, 1e-12);
}

TEST(Shifted, AddsOffset) {
  Shifted d(0.01, std::make_unique<Exponential>(0.02));
  EXPECT_NEAR(d.mean(), 0.03, 1e-12);
  EXPECT_NEAR(d.variance(), 4e-4, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(0.01), 0.0);
  EXPECT_GT(d.cdf(0.02), 0.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_GT(d.sample(rng), 0.01);
}

TEST(Empirical, MatchesSamples) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  Empirical d(xs);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf_strict(2.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
}

TEST(Empirical, RejectsBadInput) {
  EXPECT_THROW(Empirical(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Empirical(std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

// ---------------- Parameterized property tests over all families ---------

struct Family {
  std::string label;
  std::unique_ptr<DelayDistribution> (*make)();
};

std::unique_ptr<DelayDistribution> make_exp() {
  return std::make_unique<Exponential>(0.02);
}
std::unique_ptr<DelayDistribution> make_uniform() {
  return std::make_unique<Uniform>(0.0, 0.04);
}
std::unique_ptr<DelayDistribution> make_lognormal() {
  return std::make_unique<LogNormal>(LogNormal::with_moments(0.02, 1e-3));
}
std::unique_ptr<DelayDistribution> make_pareto() {
  return std::make_unique<Pareto>(Pareto::with_mean(0.02, 2.5));
}
std::unique_ptr<DelayDistribution> make_weibull() {
  return std::make_unique<Weibull>(0.7, 0.02);
}
std::unique_ptr<DelayDistribution> make_erlang() {
  return std::make_unique<Erlang>(Erlang::with_mean(4, 0.02));
}
std::unique_ptr<DelayDistribution> make_shifted() {
  return std::make_unique<Shifted>(0.005, std::make_unique<Exponential>(0.015));
}

class DistributionProperties : public ::testing::TestWithParam<Family> {};

TEST_P(DistributionProperties, CdfIsMonotoneIn01) {
  const auto d = GetParam().make();
  double prev = -1.0;
  for (double x = -0.01; x < 0.5; x += 0.003) {
    const double c = d->cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(d->cdf(-1.0), 0.0);
}

TEST_P(DistributionProperties, TailComplementsCdf) {
  const auto d = GetParam().make();
  for (double x : {0.0, 0.01, 0.02, 0.1, 1.0}) {
    EXPECT_NEAR(d->cdf(x) + d->tail(x), 1.0, 1e-12);
  }
}

TEST_P(DistributionProperties, SamplesArePositive) {
  const auto d = GetParam().make();
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(d->sample(rng), 0.0);
}

TEST_P(DistributionProperties, SampleMomentsMatchDeclared) {
  const auto d = GetParam().make();
  Rng rng(18);
  stats::OnlineStats s;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) s.add(d->sample(rng));
  // Loose tolerances: heavy-tailed families (Pareto alpha=2.5) converge
  // slowly in the variance.
  EXPECT_NEAR(s.mean(), d->mean(), 0.06 * d->mean() + 1e-6);
  EXPECT_NEAR(s.variance(), d->variance(), 0.5 * d->variance() + 1e-6);
}

TEST_P(DistributionProperties, SampleCdfMatchesDeclaredCdf) {
  const auto d = GetParam().make();
  Rng rng(19);
  constexpr int kN = 100000;
  std::vector<double> xs(kN);
  for (auto& x : xs) x = d->sample(rng);
  for (double q : {0.25, 0.5, 0.9}) {
    // Empirical Pr(D <= x) at x chosen as a declared quantile ~ q.
    double lo = 0.0;
    double hi = 10.0;
    for (int it = 0; it < 200; ++it) {
      const double mid = (lo + hi) / 2.0;
      (d->cdf(mid) < q ? lo : hi) = mid;
    }
    const double x_q = (lo + hi) / 2.0;
    const auto below = std::count_if(xs.begin(), xs.end(),
                                     [x_q](double v) { return v <= x_q; });
    EXPECT_NEAR(static_cast<double>(below) / kN, d->cdf(x_q), 0.01)
        << GetParam().label << " at q=" << q;
  }
}

TEST_P(DistributionProperties, CloneIsEquivalent) {
  const auto d = GetParam().make();
  const auto c = d->clone();
  EXPECT_EQ(c->name(), d->name());
  EXPECT_DOUBLE_EQ(c->mean(), d->mean());
  EXPECT_DOUBLE_EQ(c->variance(), d->variance());
  for (double x : {0.001, 0.01, 0.1}) EXPECT_DOUBLE_EQ(c->cdf(x), d->cdf(x));
}

TEST_P(DistributionProperties, NameIsNonEmpty) {
  EXPECT_FALSE(GetParam().make()->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionProperties,
    ::testing::Values(Family{"exp", make_exp}, Family{"uniform", make_uniform},
                      Family{"lognormal", make_lognormal},
                      Family{"pareto", make_pareto},
                      Family{"weibull", make_weibull},
                      Family{"erlang", make_erlang},
                      Family{"shifted", make_shifted}),
    [](const auto& info) { return info.param.label; });

TEST(Factory, StandardFamilyHasMatchedMeans) {
  const auto family = standard_family_with_mean(0.02);
  EXPECT_EQ(family.size(), 6u);
  for (const auto& d : family) {
    EXPECT_NEAR(d->mean(), 0.02, 1e-9) << d->name();
    EXPECT_GT(d->variance(), 0.0) << d->name();
  }
}

}  // namespace
}  // namespace chenfd::dist
