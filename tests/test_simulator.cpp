// Unit tests for the discrete-event simulator.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace chenfd::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::zero());
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator s;
  TimePoint seen{};
  s.at(TimePoint(5.0), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, TimePoint(5.0));
  EXPECT_EQ(s.now(), TimePoint(5.0));
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  s.at(TimePoint(2.0), [&] {
    s.after(Duration(3.0), [&] { EXPECT_EQ(s.now(), TimePoint(5.0)); });
  });
  s.run();
  EXPECT_EQ(s.now(), TimePoint(5.0));
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator s;
  s.at(TimePoint(5.0), [] {});
  s.run();
  EXPECT_THROW(s.at(TimePoint(4.0), [] {}), std::invalid_argument);
  EXPECT_THROW(s.after(Duration(-1.0), [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.at(TimePoint(t), [&fired, t] { fired.push_back(t); });
  }
  s.run_until(TimePoint(2.5));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.now(), TimePoint(2.5));
  s.run_until(TimePoint(10.0));
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(s.now(), TimePoint(10.0));
}

TEST(Simulator, RunUntilIncludesBoundaryEvent) {
  Simulator s;
  bool ran = false;
  s.at(TimePoint(2.0), [&] { ran = true; });
  s.run_until(TimePoint(2.0));
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilRejectsGoingBackwards) {
  Simulator s;
  s.run_until(TimePoint(5.0));
  EXPECT_THROW(s.run_until(TimePoint(4.0)), std::invalid_argument);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator s;
  bool ran = false;
  const EventId id = s.at(TimePoint(1.0), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsCanScheduleEvents) {
  // A self-perpetuating chain, as used by NFD-S freshness points.
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) s.after(Duration(1.0), tick);
  };
  s.at(TimePoint(1.0), tick);
  s.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), TimePoint(10.0));
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator s;
  int count = 0;
  s.at(TimePoint(1.0), [&] { ++count; });
  s.at(TimePoint(2.0), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, PendingEvents) {
  Simulator s;
  s.at(TimePoint(1.0), [] {});
  s.at(TimePoint(2.0), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, DeterministicTieBreaking) {
  Simulator s;
  std::vector<int> order;
  s.at(TimePoint(1.0), [&] { order.push_back(1); });
  s.at(TimePoint(1.0), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace chenfd::sim
