// Randomized model-checking of foundational components against brute-force
// reference implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "clock/clock.hpp"
#include "common/rng.hpp"
#include "core/nfd_e.hpp"
#include "core/nfd_s.hpp"
#include "core/nfd_u.hpp"
#include "qos/recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace chenfd {
namespace {

TEST(EventQueueModel, RandomOpsMatchReferenceMultimap) {
  // Reference model: ordered multimap of (time, id) with explicit FIFO
  // tie-breaking by insertion id.
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    sim::EventQueue queue;
    std::multimap<std::pair<double, std::uint64_t>, std::uint64_t> model;
    std::vector<sim::EventId> live_ids;
    std::vector<std::uint64_t> popped_queue;
    std::vector<std::uint64_t> popped_model;
    std::uint64_t tag = 0;

    for (int op = 0; op < 500; ++op) {
      const double dice = rng.uniform01();
      if (dice < 0.5) {
        // Schedule.
        const double t = rng.uniform(0.0, 100.0);
        const std::uint64_t my_tag = tag++;
        const auto id = queue.schedule(TimePoint(t), [&popped_queue,
                                                      my_tag] {
          popped_queue.push_back(my_tag);
        });
        model.emplace(std::make_pair(t, id), my_tag);
        live_ids.push_back(id);
      } else if (dice < 0.7 && !live_ids.empty()) {
        // Cancel a random live event.
        const auto idx = static_cast<std::size_t>(
            rng.uniform01() * static_cast<double>(live_ids.size()));
        const auto id = live_ids[std::min(idx, live_ids.size() - 1)];
        const bool q_ok = queue.cancel(id);
        bool m_ok = false;
        for (auto it = model.begin(); it != model.end(); ++it) {
          if (it->first.second == id) {
            model.erase(it);
            m_ok = true;
            break;
          }
        }
        EXPECT_EQ(q_ok, m_ok);
      } else {
        // Pop.
        auto ev = queue.pop();
        if (ev) {
          ev->second();
          ASSERT_FALSE(model.empty());
          popped_model.push_back(model.begin()->second);
          model.erase(model.begin());
        } else {
          EXPECT_TRUE(model.empty());
        }
      }
      EXPECT_EQ(queue.pending(), model.size());
    }
    // Drain both.
    while (auto ev = queue.pop()) ev->second();
    while (!model.empty()) {
      popped_model.push_back(model.begin()->second);
      model.erase(model.begin());
    }
    EXPECT_EQ(popped_queue, popped_model) << "round " << round;
  }
}

TEST(RecorderModel, RandomSignalsMatchBruteForce) {
  // Generate random alternating signals; compare the online Recorder with
  // a brute-force recomputation from the raw transition list.
  Rng rng(515);
  for (int round = 0; round < 50; ++round) {
    const double horizon = 100.0 + rng.uniform(0.0, 200.0);
    Verdict v = rng.bernoulli(0.5) ? Verdict::kTrust : Verdict::kSuspect;
    qos::Recorder rec(TimePoint(0.0), v);
    struct Tr {
      double at;
      Verdict to;
    };
    std::vector<Tr> raw;
    double t = 0.0;
    while (true) {
      t += rng.uniform(0.01, 5.0);
      if (t >= horizon) break;
      v = (v == Verdict::kTrust) ? Verdict::kSuspect : Verdict::kTrust;
      raw.push_back({t, v});
      rec.on_transition(TimePoint(t), v);
    }
    rec.finish(TimePoint(horizon));

    // Brute force.
    double trust_time = 0.0;
    std::size_t s_count = 0;
    std::vector<double> tmr;
    std::vector<double> tm;
    std::vector<double> tg;
    double last = 0.0;
    Verdict cur = raw.empty() ? v
                 : (raw.front().to == Verdict::kTrust ? Verdict::kSuspect
                                                      : Verdict::kTrust);
    // (cur reconstructed: state before the first transition)
    double last_s = -1.0;
    double last_t = -1.0;
    for (const auto& tr : raw) {
      if (cur == Verdict::kTrust) trust_time += tr.at - last;
      if (tr.to == Verdict::kSuspect) {
        ++s_count;
        if (last_s >= 0.0) tmr.push_back(tr.at - last_s);
        if (last_t >= 0.0) tg.push_back(tr.at - last_t);
        last_s = tr.at;
      } else {
        if (last_s >= 0.0) tm.push_back(tr.at - last_s);
        last_t = tr.at;
      }
      cur = tr.to;
      last = tr.at;
    }
    if (cur == Verdict::kTrust) trust_time += horizon - last;

    EXPECT_EQ(rec.s_transitions(), s_count);
    EXPECT_NEAR(rec.query_accuracy(), trust_time / horizon, 1e-12);
    ASSERT_EQ(rec.mistake_recurrence().count(), tmr.size());
    ASSERT_EQ(rec.mistake_duration().count(), tm.size());
    ASSERT_EQ(rec.good_period().count(), tg.size());
    for (std::size_t i = 0; i < tmr.size(); ++i) {
      EXPECT_NEAR(rec.mistake_recurrence().samples()[i], tmr[i], 1e-12);
    }
    for (std::size_t i = 0; i < tm.size(); ++i) {
      EXPECT_NEAR(rec.mistake_duration().samples()[i], tm[i], 1e-12);
    }
  }
}

// Injected invariant breaches: each detector's contract layer must reject
// a deliberately ill-formed use with the documented exception type instead
// of silently producing a corrupt schedule.

TEST(InvariantBreach, NfdSRejectsDoubleActivation) {
  sim::Simulator sim;
  core::NfdS detector(sim, core::NfdSParams{seconds(1.0), seconds(0.5)});
  detector.activate();
  EXPECT_THROW(detector.activate(), std::invalid_argument);
}

TEST(InvariantBreach, NfdSRejectsLateActivation) {
  // Fig. 6 assumes the detector arms tau_1 at time 0; activating after the
  // virtual clock has advanced would silently skip freshness points.
  sim::Simulator sim;
  core::NfdS detector(sim, core::NfdSParams{seconds(1.0), seconds(0.5)});
  sim.at(TimePoint(3.0), [] {});
  sim.run_until(TimePoint(5.0));
  EXPECT_THROW(detector.activate(), std::invalid_argument);
}

TEST(InvariantBreach, NfdURejectsHeartbeatWithoutEaProvider) {
  // NFD-U's freshness points exist only relative to known expected arrival
  // times; a detector wired without a provider must fail on first use.
  sim::Simulator sim;
  const clk::OffsetClock q_clock{Duration::zero()};
  core::NfdU detector(sim, q_clock,
                      core::NfdUParams{seconds(1.0), seconds(0.5)},
                      core::NfdU::EaProvider{});
  net::Message m;
  m.seq = 1;
  m.sent_real = TimePoint(0.0);
  m.sender_timestamp = m.sent_real;
  EXPECT_THROW(detector.on_heartbeat(m, TimePoint(0.1)),
               std::invalid_argument);
}

TEST(InvariantBreach, NfdERejectsEmptyEstimationWindow) {
  // Eq. (6.3) averages over the n most recent arrivals; n = 0 would divide
  // by zero inside the estimator.
  sim::Simulator sim;
  const clk::OffsetClock q_clock{Duration::zero()};
  EXPECT_THROW(
      core::NfdE(sim, q_clock,
                 core::NfdEParams{seconds(1.0), seconds(0.5), 0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace chenfd
