// Transition-trace I/O (qos/trace.hpp), the Theorem 1 renewal-identity
// auditor (qos/audit.hpp), and the audit_qos CLI round trip.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "audit_cli.hpp"
#include "core/nfd_s.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/audit.hpp"
#include "qos/replay.hpp"
#include "qos/trace.hpp"

namespace chenfd {
namespace {

// A mistake-rich NFD-S run: Pr(premature timeout) per freshness point is
// p_L + (1-p_L) Pr(D > delta) ~= 0.5, so a 4000 s window yields ~10^3
// complete mistake cycles — enough for the 1/n boundary effects to sit far
// below the audit tolerance.
qos::TraceFile simulated_trace(double horizon = 4000.0,
                               std::uint64_t seed = 7) {
  const core::NfdSParams params{seconds(1.0), seconds(0.5)};
  core::Testbed::Config tc;
  tc.delay = std::make_unique<dist::Exponential>(0.5);
  tc.loss = std::make_unique<net::BernoulliLoss>(0.2);
  tc.eta = params.eta;
  tc.seed = seed;
  core::Testbed tb(std::move(tc));
  core::NfdS detector(tb.simulator(), params);
  tb.attach(detector);
  qos::TraceFile trace;
  trace.start = TimePoint::zero() + params.eta + params.delta;  // tau_1
  trace.end = TimePoint(horizon);
  detector.add_listener([&trace](const Transition& t) {
    trace.transitions.push_back(t);
  });
  tb.start();
  tb.simulator().run_until(trace.end);
  detector.stop();
  return trace;
}

TEST(Trace, RoundTripPreservesWindowAndTransitions) {
  const qos::TraceFile trace = simulated_trace(200.0);
  ASSERT_FALSE(trace.transitions.empty());
  std::stringstream ss;
  qos::write_trace(ss, trace);
  const qos::TraceFile back = qos::read_trace(ss);
  EXPECT_EQ(back.start, trace.start);
  EXPECT_EQ(back.end, trace.end);
  ASSERT_EQ(back.transitions.size(), trace.transitions.size());
  for (std::size_t i = 0; i < trace.transitions.size(); ++i) {
    EXPECT_EQ(back.transitions[i], trace.transitions[i]) << "index " << i;
  }
}

TEST(Trace, MalformedInputsFailLoudly) {
  const auto rejects = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW(qos::read_trace(is), std::invalid_argument) << text;
  };
  rejects("");                                 // missing window line
  rejects("1.5 S\nwindow 0 10\n");             // transition before window
  rejects("window 10 0\n");                    // end precedes start
  rejects("window 0 10\nwindow 0 10\n");       // duplicate window
  rejects("window 0 10\n1.0 X\n");             // unknown verdict
  rejects("window 0 10\n1.0\n");               // missing verdict
  rejects("window 0 10\nfoo S\n");             // malformed time
  rejects("window 0 10\n5.0 S\n4.0 T\n");      // time reversal
  rejects("window 0 10\n11.0 S\n");            // after the window end
}

TEST(Trace, WarmUpTransitionsBeforeStartSetTheInitialVerdict) {
  // `record` captures the detector's whole history but opens the audit
  // window at tau_1; pre-start transitions must parse (the first heartbeat
  // often lands before tau_1) and replay must use them to infer the
  // verdict at the window start rather than defaulting to Suspect.
  std::istringstream is("window 10 20\n1.0 T\n12.0 S\n15.0 T\n");
  const qos::TraceFile t = qos::read_trace(is);
  ASSERT_EQ(t.transitions.size(), 3u);
  const qos::Recorder rec = qos::replay(t.transitions, t.start, t.end);
  // Trust on [10,12) and [15,20) out of 10 observed seconds.
  EXPECT_NEAR(rec.query_accuracy(), 0.7, 1e-12);
}

TEST(Trace, CommentsAndBlankLinesAreIgnored) {
  std::istringstream is(
      "# a trace\n\nwindow 0 10  # inline comment\n1.0 S\n2.0 T\n");
  const qos::TraceFile t = qos::read_trace(is);
  EXPECT_EQ(t.start, TimePoint(0.0));
  EXPECT_EQ(t.end, TimePoint(10.0));
  ASSERT_EQ(t.transitions.size(), 2u);
  EXPECT_EQ(t.transitions[0].to, Verdict::kSuspect);
  EXPECT_EQ(t.transitions[1].to, Verdict::kTrust);
}

TEST(Trace, CrlfInputParsesLikeLfInput) {
  // Traces written on (or transferred through) Windows tooling arrive with
  // CRLF line endings; the '\r' must not end up glued to the last token.
  std::istringstream is("window 0 10\r\n1.0 S\r\n2.0 T\r\n");
  const qos::TraceFile t = qos::read_trace(is);
  EXPECT_EQ(t.end, TimePoint(10.0));
  ASSERT_EQ(t.transitions.size(), 2u);
  EXPECT_EQ(t.transitions[1].to, Verdict::kTrust);
  // Mixed endings and a CRLF comment line parse too.
  std::istringstream mixed("# note\r\nwindow 0 10\n1.0 T\r\n");
  EXPECT_EQ(qos::read_trace(mixed).transitions.size(), 1u);
}

TEST(Trace, DiagnosticsCarryTheOffendingLineNumber) {
  const auto line_of = [](const std::string& text) -> std::string {
    std::istringstream is(text);
    try {
      (void)qos::read_trace(is);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  // Comment and blank lines still count toward the line number, so the
  // diagnostic points at the file as the user sees it.
  EXPECT_NE(line_of("# c\n\nwindow 0 10\n1.0 X\n").find("line 4"),
            std::string::npos);
  EXPECT_NE(line_of("window 0 10\n5.0 S\n4.0 T\n").find("line 3"),
            std::string::npos);
  EXPECT_NE(line_of("window 10 0\n").find("line 1"), std::string::npos);
}

TEST(Audit, Theorem1IdentitiesHoldOnSimulatedNfdSTrace) {
  const qos::TraceFile trace = simulated_trace();
  const qos::Recorder rec =
      qos::replay(trace.transitions, trace.start, trace.end);
  const qos::AuditReport report = qos::audit_theorem1(rec, 0.1);
  EXPECT_GE(report.cycles, 200u);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.ok) << c.name << ": lhs=" << c.lhs << " rhs=" << c.rhs
                      << " rel.err=" << c.rel_error;
  }
  EXPECT_TRUE(report.ok());
}

TEST(Audit, ForwardGoodPeriodIdentityIsExactOnCompleteSamples) {
  // Part 3c compares the directly integrated E(T_FG) with the formula on
  // the T_G sample moments; over the same complete sample set the two are
  // algebraically identical, so the disagreement is pure rounding.
  const qos::TraceFile trace = simulated_trace(1000.0);
  const qos::Recorder rec =
      qos::replay(trace.transitions, trace.start, trace.end);
  const qos::AuditReport report = qos::audit_theorem1(rec, 1e-9);
  for (const auto& c : report.checks) {
    if (c.name.rfind("E(T_FG)", 0) == 0) {
      EXPECT_TRUE(c.ok) << c.rel_error;
    }
  }
}

TEST(Audit, TamperedWindowBreaksRenewalIdentities) {
  // Inflating the recorded window end is the kind of silent corruption the
  // auditor exists for: lambda_M (mistakes per second) collapses while the
  // T_MR samples are untouched, so lambda_M = 1/E(T_MR) fails loudly.
  qos::TraceFile trace = simulated_trace();
  trace.end = TimePoint(trace.end.seconds() * 10.0);
  const qos::Recorder rec =
      qos::replay(trace.transitions, trace.start, trace.end);
  const qos::AuditReport report = qos::audit_theorem1(rec, 0.1);
  EXPECT_FALSE(report.ok());
}

TEST(Audit, TooFewCyclesIsRejected) {
  const std::vector<Transition> two = {
      Transition{TimePoint(1.0), Verdict::kTrust},
      Transition{TimePoint(2.0), Verdict::kSuspect},
  };
  const qos::Recorder rec = qos::replay(two, TimePoint(0.0), TimePoint(3.0));
  EXPECT_THROW(qos::audit_theorem1(rec), std::invalid_argument);
}

TEST(AuditCli, RecordCheckRoundTripPasses) {
  std::stringstream trace;
  const int rec_rc = cli::run_audit(
      {"record", "--eta", "1", "--delta", "0.5", "--ploss", "0.2", "--mean",
       "0.5", "--seconds", "4000", "--seed", "11"},
      trace, trace);
  ASSERT_EQ(rec_rc, 0);
  std::ostringstream out;
  const int check_rc =
      cli::run_audit({"check", "--tol", "0.1"}, trace, out);
  EXPECT_EQ(check_rc, 0) << out.str();
  EXPECT_NE(out.str().find("AUDIT PASSED"), std::string::npos) << out.str();
}

TEST(AuditCli, CorruptedTraceFailsTheCheck) {
  std::stringstream trace;
  ASSERT_EQ(cli::run_audit({"record", "--eta", "1", "--delta", "0.5",
                            "--ploss", "0.2", "--mean", "0.5", "--seconds",
                            "4000", "--seed", "11"},
                           trace, trace),
            0);
  // Tamper with the window line: stretch the recorded end tenfold.
  std::string text = trace.str();
  const auto pos = text.find("window ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "window 1.5 40000");
  std::istringstream corrupted(text);
  std::ostringstream out;
  EXPECT_EQ(cli::run_audit({"check", "--tol", "0.1"}, corrupted, out), 1);
  EXPECT_NE(out.str().find("AUDIT FAILED"), std::string::npos) << out.str();
}

TEST(AuditCli, MalformedTraceExitsWithUsageError) {
  std::istringstream garbage("window 0 10\nnot-a-time S\n");
  std::ostringstream out;
  EXPECT_EQ(cli::run_audit({"check"}, garbage, out), 2);
  EXPECT_NE(out.str().find("error:"), std::string::npos);
}

}  // namespace
}  // namespace chenfd
