// Tests for the one-sided Chebyshev inequality and the Theorem 9 / 11
// distribution-free QoS bounds, including that the bounds really do bound
// the exact Theorem 5 values for several distribution families.

#include <gtest/gtest.h>

#include <memory>

#include "core/analysis.hpp"
#include "core/chebyshev.hpp"
#include "dist/factory.hpp"

namespace chenfd::core {
namespace {

TEST(OneSidedBound, MatchesFormula) {
  // V / (V + (t - E)^2) with V = 0.02, E = 0.02, t = 30:
  const double v = 0.02;
  const double e = 0.02;
  const double t = 30.0;
  EXPECT_NEAR(one_sided_tail_bound(t, e, v),
              v / (v + (t - e) * (t - e)), 1e-15);
}

TEST(OneSidedBound, TrivialBelowMean) {
  EXPECT_DOUBLE_EQ(one_sided_tail_bound(0.01, 0.02, 0.02), 1.0);
  EXPECT_DOUBLE_EQ(one_sided_tail_bound(0.02, 0.02, 0.02), 1.0);
}

TEST(OneSidedBound, DominatesTrueTailForAllFamilies) {
  // Eq. (5.1) must upper-bound Pr(D > t) for every distribution with the
  // stated mean/variance.
  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    for (double t = 0.021; t < 0.4; t += 0.004) {
      EXPECT_LE(d->tail(t),
                one_sided_tail_bound(t, d->mean(), d->variance()) + 1e-12)
          << d->name() << " at t=" << t;
    }
  }
}

TEST(OneSidedBound, RejectsNegativeVariance) {
  EXPECT_THROW((void)one_sided_tail_bound(1.0, 0.0, -1.0),
               std::invalid_argument);
}

TEST(Theorem9, BoundsExactAnalysisForAllFamilies) {
  // For every family with the same E(D) and the family's own V(D), the
  // Theorem 9 bounds must bracket the exact Theorem 5 values.
  const NfdSParams params{Duration(1.0), Duration(2.0)};
  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    const auto bounds =
        nfd_s_bounds(params, 0.01, d->mean(), d->variance());
    NfdSAnalysis exact(params, 0.01, *d);
    EXPECT_LE(bounds.mistake_recurrence_lower.seconds(),
              exact.e_tmr().seconds() * (1.0 + 1e-9))
        << d->name();
    EXPECT_GE(bounds.mistake_duration_upper.seconds(),
              exact.e_tm().seconds() * (1.0 - 1e-9))
        << d->name();
  }
}

TEST(Theorem9, RequiresDeltaAboveMean) {
  EXPECT_THROW(
      (void)nfd_s_bounds(NfdSParams{Duration(1.0), Duration(0.01)}, 0.0,
                         0.02, 4e-4),
      std::invalid_argument);
}

TEST(Theorem9, TighterWithSmallerVariance) {
  const NfdSParams params{Duration(1.0), Duration(2.0)};
  const auto loose = nfd_s_bounds(params, 0.01, 0.02, 0.02);
  const auto tight = nfd_s_bounds(params, 0.01, 0.02, 4e-4);
  EXPECT_GT(tight.mistake_recurrence_lower.seconds(),
            loose.mistake_recurrence_lower.seconds());
  EXPECT_LT(tight.mistake_duration_upper.seconds(),
            loose.mistake_duration_upper.seconds());
}

TEST(Theorem11, EquivalentToTheorem9WithAlphaSlack) {
  // Theorem 11 is Theorem 9 with d = alpha (E(D) eliminated).
  const auto via_9 = nfd_s_bounds(NfdSParams{Duration(1.0), Duration(2.02)},
                                  0.01, 0.02, 4e-4);
  const auto via_11 =
      nfd_u_bounds(NfdUParams{Duration(1.0), Duration(2.0)}, 0.01, 4e-4);
  EXPECT_NEAR(via_9.mistake_recurrence_lower.seconds(),
              via_11.mistake_recurrence_lower.seconds(), 1e-9);
  EXPECT_NEAR(via_9.mistake_duration_upper.seconds(),
              via_11.mistake_duration_upper.seconds(), 1e-9);
}

TEST(Theorem11, DoesNotNeedDelayMean) {
  // Identical output whatever the true E(D) is — the whole point of the
  // Section 6 configuration.
  const auto b = nfd_u_bounds(NfdUParams{Duration(1.0), Duration(1.5)}, 0.01,
                              4e-4);
  EXPECT_GT(b.mistake_recurrence_lower.seconds(), 1.0);
  EXPECT_GT(b.mistake_duration_upper.seconds(), 0.0);
}

TEST(Theorem11, BoundsExactNfdUAnalysis) {
  const NfdUParams params{Duration(1.0), Duration(2.0)};
  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    const auto bounds = nfd_u_bounds(params, 0.01, d->variance());
    const auto exact = NfdSAnalysis::for_nfd_u(params, 0.01, *d);
    EXPECT_LE(bounds.mistake_recurrence_lower.seconds(),
              exact.e_tmr().seconds() * (1.0 + 1e-9))
        << d->name();
    EXPECT_GE(bounds.mistake_duration_upper.seconds(),
              exact.e_tm().seconds() * (1.0 - 1e-9))
        << d->name();
  }
}

TEST(Theorem9, ZeroVarianceDegeneratesGracefully) {
  // V = 0 (constant delay known exactly): beta = p_L^{k0+1}.
  const auto b = nfd_s_bounds(NfdSParams{Duration(1.0), Duration(2.0)}, 0.1,
                              0.5, 0.0);
  // d = 1.5, k0 = ceil(1.5) - 1 = 1: beta = 0.1^2 = 0.01.
  EXPECT_NEAR(b.mistake_recurrence_lower.seconds(), 1.0 / 0.01, 1e-9);
}

}  // namespace
}  // namespace chenfd::core
