// Behavioural tests of SFD, the "simple" algorithm of Section 1.2.1 with
// the Section 7.2 cutoff, including the two drawbacks the paper identifies.

#include <gtest/gtest.h>

#include <vector>

#include "clock/clock.hpp"
#include "core/sfd.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {
namespace {

net::Message hb(net::SeqNo seq, double sigma) {
  net::Message m;
  m.seq = seq;
  m.sent_real = TimePoint(sigma);
  m.sender_timestamp = TimePoint(sigma);
  return m;
}

struct Script {
  sim::Simulator sim;
  clk::SynchronizedClock q_clock;
  Sfd detector;
  std::vector<Transition> log;

  explicit Script(SfdParams params) : detector(sim, q_clock, params) {
    detector.add_listener([this](const Transition& t) { log.push_back(t); });
    detector.activate();
  }

  void deliver(net::SeqNo seq, double sigma, double at) {
    sim.at(TimePoint(at), [this, seq, sigma, at] {
      detector.on_heartbeat(hb(seq, sigma), TimePoint(at));
    });
  }

  void run_to(double t) { sim.run_until(TimePoint(t)); }
};

TEST(Sfd, InitiallySuspects) {
  Script s(SfdParams{Duration(2.0)});
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
}

TEST(Sfd, TrustsOnHeartbeatThenTimesOut) {
  Script s(SfdParams{Duration(2.0)});
  s.deliver(1, 1.0, 1.1);
  s.run_to(10.0);
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(1.1), Verdict::kTrust}));
  EXPECT_EQ(s.log[1], (Transition{TimePoint(3.1), Verdict::kSuspect}));
}

TEST(Sfd, SteadyStreamKeepsTrusting) {
  Script s(SfdParams{Duration(2.0)});
  for (int i = 1; i <= 10; ++i) {
    s.deliver(static_cast<net::SeqNo>(i), static_cast<double>(i),
              static_cast<double>(i) + 0.1);
  }
  s.run_to(10.5);
  ASSERT_EQ(s.log.size(), 1u);
  EXPECT_EQ(s.detector.output(), Verdict::kTrust);
}

TEST(Sfd, OnlyNewerHeartbeatsRestartTimer) {
  Script s(SfdParams{Duration(2.0)});
  s.deliver(2, 2.0, 2.1);
  s.deliver(1, 1.0, 3.9);  // old heartbeat: must NOT extend the timer
  s.run_to(10.0);
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[1], (Transition{TimePoint(4.1), Verdict::kSuspect}));
}

TEST(Sfd, ReceiptAnchoredTimerDependsOnPreviousHeartbeat) {
  // The first drawback (Section 1.2.1): whether m_2's timer expires
  // prematurely depends on m_1's delay.  Same m_2 delay (0.9), same
  // TO = 1.0; only m_1's delay differs.
  auto premature_with_m1_delay = [](double d1) {
    Script s(SfdParams{Duration(1.0)});
    s.deliver(1, 1.0, 1.0 + d1);
    s.deliver(2, 2.0, 2.9);
    s.run_to(2.95);
    // Was there an S-transition strictly before m_2 arrived?
    for (const auto& t : s.log) {
      if (t.to == Verdict::kSuspect && t.at < TimePoint(2.9)) return true;
    }
    return false;
  };
  EXPECT_TRUE(premature_with_m1_delay(0.1));   // fast m_1 -> timer at 2.1
  EXPECT_FALSE(premature_with_m1_delay(0.95));  // slow m_1 -> timer at 2.95
}

TEST(Sfd, CutoffDiscardsSlowHeartbeats) {
  Script s(SfdParams{Duration(2.0), Duration(0.5)});
  s.deliver(1, 1.0, 1.6);  // delay 0.6 > cutoff 0.5: discarded
  s.run_to(5.0);
  EXPECT_TRUE(s.log.empty());
  EXPECT_EQ(s.detector.output(), Verdict::kSuspect);
  EXPECT_EQ(s.detector.discarded(), 1u);
}

TEST(Sfd, CutoffBoundsDetectionTime) {
  // With cutoff c, any accepted heartbeat was sent within c of its receipt,
  // so after a crash at t the last accepted receipt is < t + c and
  // suspicion is final by t + c + TO.
  const double c = 0.5;
  const double to = 2.0;
  Script s(SfdParams{Duration(to), Duration(c)});
  s.deliver(1, 1.0, 1.2);
  s.deliver(2, 2.0, 2.4);  // delay 0.4 <= c: accepted
  // p crashed right after sending m_2 at sigma = 2.0.
  s.run_to(20.0);
  ASSERT_EQ(s.log.back().to, Verdict::kSuspect);
  EXPECT_LE(s.log.back().at.seconds(), 2.0 + c + to + 1e-9);
}

TEST(Sfd, WithoutCutoffDetectionDependsOnMaxDelay) {
  // The second drawback: with no cutoff, a very slow heartbeat keeps the
  // detector trusting long after the crash.
  Script s(SfdParams{Duration(2.0)});  // cutoff = infinity
  s.deliver(1, 1.0, 1.1);
  s.deliver(2, 2.0, 30.0);  // 28s delay, accepted without cutoff
  s.run_to(100.0);
  // q re-trusts at 30.0 and only suspects at 32.0 — way past crash + TO.
  ASSERT_EQ(s.log.size(), 4u);
  EXPECT_EQ(s.log[3], (Transition{TimePoint(32.0), Verdict::kSuspect}));
}

TEST(Sfd, DuplicateHeartbeatsIgnored) {
  Script s(SfdParams{Duration(2.0)});
  s.deliver(1, 1.0, 1.1);
  s.deliver(1, 1.0, 2.5);  // duplicate: timer must NOT restart
  s.run_to(10.0);
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[1].at, TimePoint(3.1));
}

TEST(Sfd, StopCancelsTimer) {
  Script s(SfdParams{Duration(2.0)});
  s.deliver(1, 1.0, 1.1);
  s.run_to(2.0);
  s.detector.stop();
  s.run_to(10.0);
  EXPECT_EQ(s.log.size(), 1u);
}

TEST(Sfd, RejectsInvalidParams) {
  sim::Simulator sim;
  clk::SynchronizedClock clock;
  EXPECT_THROW(Sfd(sim, clock, SfdParams{Duration(0.0)}),
               std::invalid_argument);
  EXPECT_THROW(Sfd(sim, clock, SfdParams{Duration(1.0), Duration(-1.0)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::core
