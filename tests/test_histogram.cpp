// Unit tests for the fixed-width histogram.

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/histogram.hpp"

namespace chenfd::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
}

TEST(Histogram, BoundaryValueGoesToUpperBin) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);  // exactly on the internal edge -> bin 1
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, CountOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::stats
