// Link- and run-time proof that contract macros are zero-cost at audit
// level 0 (the acceptance criterion "contract checks compile to nothing").
//
// This translation unit is built with CHENFD_AUDIT_LEVEL=0.  Every macro's
// condition calls a function that is declared but defined nowhere, so if
// any macro still compiled its condition, the build of this test would
// fail at link time with an undefined reference.  At run time the counter
// double-checks that no condition expression was evaluated.

#include "common/check.hpp"

#if CHENFD_AUDIT_LEVEL != 0
#error "contracts_compiled_out.cpp must be compiled with CHENFD_AUDIT_LEVEL=0"
#endif

// Deliberately declared and never defined — see file comment.
bool chenfd_contracts_must_not_be_evaluated(int& counter);

int main() {
  int evaluations = 0;
  CHENFD_EXPECTS(chenfd_contracts_must_not_be_evaluated(evaluations),
                 "precondition must compile out at level 0");
  CHENFD_ENSURES(chenfd_contracts_must_not_be_evaluated(evaluations),
                 "postcondition must compile out at level 0");
  CHENFD_AUDIT(chenfd_contracts_must_not_be_evaluated(evaluations),
               "audit must compile out at level 0");
  return evaluations == 0 ? 0 : 1;
}
