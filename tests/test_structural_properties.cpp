// Structural invariants of the algorithms, checked on randomized DES runs:
//
//   - Lemma 2 / Prop. 13.1 for NFD-S: S-transitions occur only at
//     freshness points tau_i = i*eta + delta; T-transitions only at
//     heartbeat receipt times.
//   - Output alternates S/T strictly (finitely many transitions per
//     bounded interval, Section 2.1).
//   - NFD-S freshness semantics: at any moment, output == Trust iff a
//     received message is still fresh (checked against an independent
//     reference computation from the raw delivery log).
//   - SFD: suspicion exactly TO after the newest accepted receipt.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"

namespace chenfd::core {
namespace {

struct Trace {
  std::vector<Transition> transitions;
  std::vector<std::pair<net::SeqNo, double>> deliveries;  // (seq, time)
};

Trace run_nfd_s(NfdSParams params, double p_loss, std::uint64_t seed,
                double horizon) {
  Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.loss = std::make_unique<net::BernoulliLoss>(p_loss);
  cfg.eta = params.eta;
  cfg.seed = seed;
  Testbed tb(std::move(cfg));
  NfdS det(tb.simulator(), params);
  Trace trace;
  tb.link().set_receiver([&](const net::Message& m, TimePoint at) {
    trace.deliveries.emplace_back(m.seq, at.seconds());
    det.on_heartbeat(m, at);
  });
  tb.attach(det);  // receiver overridden above; attach only for start()
  det.add_listener([&trace](const Transition& t) {
    trace.transitions.push_back(t);
  });
  tb.start();
  tb.simulator().run_until(TimePoint(horizon));
  det.stop();
  return trace;
}

class NfdSStructure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NfdSStructure, TransitionsAlternate) {
  const auto trace =
      run_nfd_s(NfdSParams{Duration(1.0), Duration(1.0)}, 0.05, GetParam(),
                5000.0);
  ASSERT_FALSE(trace.transitions.empty());
  for (std::size_t i = 1; i < trace.transitions.size(); ++i) {
    EXPECT_NE(trace.transitions[i].to, trace.transitions[i - 1].to)
        << "at index " << i;
    EXPECT_GE(trace.transitions[i].at, trace.transitions[i - 1].at);
  }
}

TEST_P(NfdSStructure, STransitionsOnlyAtFreshnessPoints) {
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  const auto trace = run_nfd_s(params, 0.05, GetParam(), 5000.0);
  for (const auto& t : trace.transitions) {
    if (t.to != Verdict::kSuspect) continue;
    // t.at must be i*eta + delta for integer i >= 2 (Prop. 13.1).
    const double i =
        (t.at.seconds() - params.delta.seconds()) / params.eta.seconds();
    EXPECT_NEAR(i, std::round(i), 1e-9) << "S-transition at " << t.at;
    EXPECT_GE(std::round(i), 2.0);
  }
}

TEST_P(NfdSStructure, TTransitionsOnlyAtReceiptTimes) {
  const auto trace =
      run_nfd_s(NfdSParams{Duration(1.0), Duration(1.0)}, 0.05, GetParam(),
                5000.0);
  for (const auto& t : trace.transitions) {
    if (t.to != Verdict::kTrust) continue;
    const bool at_receipt = std::any_of(
        trace.deliveries.begin(), trace.deliveries.end(),
        [&](const auto& d) {
          return std::abs(d.second - t.at.seconds()) < 1e-12;
        });
    EXPECT_TRUE(at_receipt) << "T-transition at " << t.at;
  }
}

TEST_P(NfdSStructure, OutputMatchesFreshnessReference) {
  // Independent reference: q trusts at time t in [tau_i, tau_{i+1}) iff
  // some delivery (seq j >= i) happened at or before t (Lemma 2).
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  const auto trace = run_nfd_s(params, 0.05, GetParam(), 2000.0);

  const auto reference_trusts = [&](double t) {
    const double eta = params.eta.seconds();
    const double delta = params.delta.seconds();
    const double idx = std::floor((t - delta) / eta);
    const std::uint64_t i =
        idx < 1.0 ? 0 : static_cast<std::uint64_t>(idx);
    for (const auto& [seq, at] : trace.deliveries) {
      if (at <= t && seq >= i) return true;
    }
    return false;
  };
  const auto output_at = [&](double t) {
    Verdict v = Verdict::kSuspect;
    for (const auto& tr : trace.transitions) {
      if (tr.at.seconds() > t) break;
      v = tr.to;
    }
    return v == Verdict::kTrust;
  };

  Rng rng(GetParam() ^ 0x5555);
  for (int k = 0; k < 2000; ++k) {
    const double t = rng.uniform(10.0, 1990.0);
    EXPECT_EQ(output_at(t), reference_trusts(t)) << "at t = " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NfdSStructure,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SfdStructure, SuspicionExactlyTimeoutAfterNewestAcceptedReceipt) {
  Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.1);
  cfg.eta = seconds(1.0);
  cfg.seed = 77;
  Testbed tb(std::move(cfg));
  const SfdParams params{Duration(1.3), Duration(0.16)};
  Sfd det(tb.simulator(), tb.q_clock(), params);

  std::vector<double> effective_receipts;
  net::SeqNo max_seq = 0;
  tb.link().set_receiver([&](const net::Message& m, TimePoint at) {
    const double delay = (at - m.sender_timestamp).seconds();
    if (delay <= params.cutoff.seconds() && m.seq > max_seq) {
      max_seq = m.seq;
      effective_receipts.push_back(at.seconds());
    }
    det.on_heartbeat(m, at);
  });
  tb.attach(det);
  std::vector<Transition> transitions;
  det.add_listener([&](const Transition& t) { transitions.push_back(t); });
  tb.start();
  tb.simulator().run_until(TimePoint(3000.0));
  det.stop();

  std::size_t s_count = 0;
  for (const auto& t : transitions) {
    if (t.to != Verdict::kSuspect) continue;
    ++s_count;
    // Must equal some effective receipt + TO.
    const bool matches = std::any_of(
        effective_receipts.begin(), effective_receipts.end(), [&](double r) {
          return std::abs(r + params.timeout.seconds() - t.at.seconds()) <
                 1e-9;
        });
    EXPECT_TRUE(matches) << "S-transition at " << t.at;
  }
  EXPECT_GT(s_count, 10u);  // the lossy link produced mistakes to check
}

}  // namespace
}  // namespace chenfd::core
