// Unit tests for the Theorem 1 metric relations.

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "qos/relations.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::qos {
namespace {

TEST(Relations, MistakeRate) {
  EXPECT_DOUBLE_EQ(mistake_rate(16.0), 1.0 / 16.0);
  EXPECT_THROW((void)mistake_rate(0.0), std::invalid_argument);
}

TEST(Relations, QueryAccuracy) {
  EXPECT_DOUBLE_EQ(query_accuracy(12.0, 16.0), 0.75);
  EXPECT_DOUBLE_EQ(query_accuracy(0.0, 16.0), 0.0);
  EXPECT_THROW((void)query_accuracy(1.0, 0.0), std::invalid_argument);
}

TEST(Relations, ForwardGoodPeriodMeanDeterministicTg) {
  // V(T_G) = 0: E(T_FG) = E(T_G) / 2 exactly (no paradox).
  EXPECT_DOUBLE_EQ(forward_good_period_mean(8.0, 0.0), 4.0);
}

TEST(Relations, ForwardGoodPeriodMeanParadox) {
  // Exponential T_G with mean m has V = m^2, so E(T_FG) = m, not m/2:
  // the full waiting-time paradox.
  EXPECT_DOUBLE_EQ(forward_good_period_mean(8.0, 64.0), 8.0);
  // Any variance makes E(T_FG) exceed E(T_G)/2.
  EXPECT_GT(forward_good_period_mean(8.0, 1.0), 4.0);
}

TEST(Relations, ForwardGoodPeriodMeanZeroTg) {
  EXPECT_DOUBLE_EQ(forward_good_period_mean(0.0, 0.0), 0.0);
}

TEST(Relations, MomentFormulaMatchesClosedFormOnTwoPointSample) {
  stats::SampleSet tg;
  tg.add(2.0);
  tg.add(6.0);
  // 3b with k = 1: E(T_FG) = E(T_G^2) / (2 E(T_G)) = (4+36)/2 / (2*4) = 2.5.
  EXPECT_DOUBLE_EQ(forward_good_period_moment(tg, 1), 2.5);
  // 3c agrees: mean 4, variance 4 -> (1 + 4/16) * 4/2 = 2.5.
  EXPECT_DOUBLE_EQ(forward_good_period_mean(tg.mean(), tg.variance()), 2.5);
}

TEST(Relations, MomentFormulaHigherK) {
  stats::SampleSet tg;
  tg.add(1.0);
  tg.add(3.0);
  // E(T_FG^2) = E(T_G^3) / (3 E(T_G)) = ((1+27)/2) / (3*2) = 14/6.
  EXPECT_DOUBLE_EQ(forward_good_period_moment(tg, 2), 14.0 / 6.0);
  EXPECT_THROW((void)forward_good_period_moment(tg, 0), std::invalid_argument);
}

TEST(Relations, CdfFormulaOnDeterministicTg) {
  // T_G identically 4: T_FG is uniform on [0, 4], so the CDF is x/4.
  stats::SampleSet tg;
  tg.add(4.0);
  tg.add(4.0);
  EXPECT_DOUBLE_EQ(forward_good_period_cdf(tg, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(forward_good_period_cdf(tg, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(forward_good_period_cdf(tg, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(forward_good_period_cdf(tg, 10.0), 1.0);
}

TEST(Relations, CdfIsMonotoneAndNormalized) {
  Rng rng(77);
  stats::SampleSet tg;
  for (int i = 0; i < 1000; ++i) tg.add(0.1 + rng.uniform(0.0, 10.0));
  double prev = 0.0;
  for (double x = 0.0; x <= 12.0; x += 0.25) {
    const double c = forward_good_period_cdf(tg, x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(forward_good_period_cdf(tg, 20.0), 1.0, 1e-12);
}

TEST(Relations, CdfConsistentWithMoment) {
  // E(T_FG) = Int_0^inf (1 - F(x)) dx; check numerically against 3b.
  Rng rng(78);
  stats::SampleSet tg;
  for (int i = 0; i < 2000; ++i) tg.add(0.5 + rng.uniform(0.0, 4.0));
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = 0.0; x < 6.0; x += dx) {
    integral += (1.0 - forward_good_period_cdf(tg, x)) * dx;
  }
  EXPECT_NEAR(integral, forward_good_period_moment(tg, 1), 1e-2);
}

}  // namespace
}  // namespace chenfd::qos
