// Tests for the correlated-delay sampler (Gaussian copula over an
// arbitrary marginal) and the distribution quantile functions it uses.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/analysis.hpp"
#include "core/fast_sim.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "net/correlated.hpp"
#include "stats/online_stats.hpp"

namespace chenfd::net {
namespace {

TEST(Quantile, InvertsCdfForAllFamilies) {
  for (const auto& d : dist::standard_family_with_mean(0.02)) {
    for (double u : {0.01, 0.25, 0.5, 0.9, 0.999}) {
      const double x = d->quantile(u);
      EXPECT_NEAR(d->cdf(x), u, 1e-6) << d->name() << " u=" << u;
    }
  }
}

TEST(Quantile, ClosedFormsMatchGenericBisection) {
  // The overridden closed forms must agree with the default bisection.
  dist::Exponential d(0.02);
  for (double u : {0.1, 0.5, 0.99}) {
    EXPECT_NEAR(d.quantile(u), d.DelayDistribution::quantile(u),
                1e-9 * d.quantile(u));
  }
}

TEST(Quantile, RejectsOutOfRange) {
  dist::Exponential d(0.02);
  EXPECT_THROW((void)d.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)d.quantile(1.0), std::invalid_argument);
}

TEST(CorrelatedDelaySampler, RejectsBadArgs) {
  EXPECT_THROW(CorrelatedDelaySampler(nullptr, 0.5), std::invalid_argument);
  EXPECT_THROW(
      CorrelatedDelaySampler(std::make_unique<dist::Exponential>(0.02), 1.0),
      std::invalid_argument);
}

TEST(CorrelatedDelaySampler, PreservesMarginalDistribution) {
  // Whatever rho, the marginal must stay the configured distribution.
  for (const double rho : {0.0, 0.5, 0.95}) {
    CorrelatedDelaySampler s(std::make_unique<dist::Exponential>(0.02), rho);
    Rng rng(42);
    stats::OnlineStats acc;
    int below_median = 0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) {
      const double d = s.sample(rng);
      acc.add(d);
      if (d <= 0.02 * 0.6931471805599453) ++below_median;  // exp median
    }
    EXPECT_NEAR(acc.mean(), 0.02, 0.002) << "rho=" << rho;
    EXPECT_NEAR(acc.variance(), 4e-4, 1e-4) << "rho=" << rho;
    EXPECT_NEAR(below_median / static_cast<double>(kN), 0.5, 0.02)
        << "rho=" << rho;
  }
}

TEST(CorrelatedDelaySampler, ZeroRhoIsSeriallyUncorrelated) {
  CorrelatedDelaySampler s(std::make_unique<dist::Exponential>(0.02), 0.0);
  Rng rng(43);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = s.sample(rng);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double cov = 0.0;
  double var = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    cov += (xs[i] - mean) * (xs[i - 1] - mean);
    var += (xs[i] - mean) * (xs[i] - mean);
  }
  EXPECT_NEAR(cov / var, 0.0, 0.02);
}

TEST(CorrelatedDelaySampler, PositiveRhoCorrelatesNeighbors) {
  CorrelatedDelaySampler s(std::make_unique<dist::Exponential>(0.02), 0.9);
  Rng rng(44);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = s.sample(rng);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double cov = 0.0;
  double var = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    cov += (xs[i] - mean) * (xs[i - 1] - mean);
    var += (xs[i] - mean) * (xs[i] - mean);
  }
  EXPECT_GT(cov / var, 0.6);  // strong (copula shrinks Pearson rho a bit)
}

TEST(CorrelatedDelaySampler, RhoZeroMatchesTheorem5ThroughFastSim) {
  // Sanity for the ablation harness: at rho = 0 the sampled engine must
  // agree with the analytic values like the i.i.d. engine does.
  const core::NfdSParams params{Duration(1.0), Duration(1.0)};
  dist::Exponential marginal(0.02);
  core::NfdSAnalysis exact(params, 0.02, marginal);
  CorrelatedDelaySampler s(marginal.clone(), 0.0);
  Rng rng(45);
  core::StopCriteria stop;
  stop.target_s_transitions = 8000;
  const auto r = core::fast_nfd_s_accuracy_sampled(
      params, 0.02, [&s](Rng& g) { return s.sample(g); }, rng, stop);
  EXPECT_NEAR(r.e_tmr(), exact.e_tmr().seconds(),
              0.07 * exact.e_tmr().seconds());
}

TEST(CorrelatedDelaySampler, CorrelationChangesQoSDespiteSameMarginal) {
  // The point of the ablation: with identical marginals, rho != 0 moves
  // E(T_MR) away from the independence-based analysis.  A mistake with
  // delta = 2 needs ~3 consecutive late heartbeats; positive correlation
  // makes that far more likely, so mistakes multiply.
  const core::NfdSParams params{Duration(1.0), Duration(2.0)};
  dist::Exponential marginal(0.6);
  core::StopCriteria stop;
  stop.target_s_transitions = 5000;
  stop.max_heartbeats = 20'000'000;
  CorrelatedDelaySampler iid(marginal.clone(), 0.0);
  CorrelatedDelaySampler cor(marginal.clone(), 0.95);
  Rng rng_a(46);
  Rng rng_b(47);
  const auto r_iid = core::fast_nfd_s_accuracy_sampled(
      params, 0.0, [&iid](Rng& g) { return iid.sample(g); }, rng_a, stop);
  const auto r_cor = core::fast_nfd_s_accuracy_sampled(
      params, 0.0, [&cor](Rng& g) { return cor.sample(g); }, rng_b, stop);
  // Correlated delays cause several times more mistakes.
  EXPECT_LT(3.0 * r_cor.e_tmr(), r_iid.e_tmr());
}

}  // namespace
}  // namespace chenfd::net
