// Unit tests for the loss models.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "net/loss_model.hpp"

namespace chenfd::net {
namespace {

TEST(BernoulliLoss, MatchesProbability) {
  BernoulliLoss loss(0.01);
  Rng rng(1);
  int drops = 0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) {
    if (loss.drop_next(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kN, 0.01, 0.002);
  EXPECT_DOUBLE_EQ(loss.steady_state_loss(), 0.01);
}

TEST(BernoulliLoss, ZeroNeverDrops) {
  BernoulliLoss loss(0.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.drop_next(rng));
}

TEST(BernoulliLoss, RejectsInvalidProbability) {
  EXPECT_THROW(BernoulliLoss(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.1), std::invalid_argument);
}

TEST(BernoulliLoss, TotalBlackoutIsAdmitted) {
  // p = 1 models a dead link for fault injection; only the configuration
  // procedures require p_L < 1.
  BernoulliLoss loss(1.0);
  EXPECT_DOUBLE_EQ(loss.steady_state_loss(), 1.0);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(loss.drop_next(rng));
}

TEST(BernoulliLoss, CloneBehavesIdentically) {
  BernoulliLoss loss(0.3);
  auto clone = loss.clone();
  EXPECT_DOUBLE_EQ(clone->steady_state_loss(), 0.3);
  EXPECT_EQ(clone->name(), loss.name());
}

TEST(GilbertElliottLoss, SteadyStateLoss) {
  // pi_bad = gb / (gb + bg) = 0.1 / 0.5 = 0.2.
  GilbertElliottLoss loss(0.1, 0.4, 0.01, 0.5);
  EXPECT_NEAR(loss.steady_state_loss(), 0.2 * 0.5 + 0.8 * 0.01, 1e-12);
}

TEST(GilbertElliottLoss, EmpiricalLossMatchesSteadyState) {
  GilbertElliottLoss loss(0.05, 0.25, 0.005, 0.6);
  Rng rng(3);
  int drops = 0;
  constexpr int kN = 500000;
  for (int i = 0; i < kN; ++i) {
    if (loss.drop_next(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kN, loss.steady_state_loss(), 0.01);
}

TEST(GilbertElliottLoss, EmpiricalLossWithinThreeSigmaOfClosedForm) {
  // The drop indicators form a correlated Bernoulli sequence driven by the
  // two-state chain.  With lambda = 1 - p_gb - p_bg the state autocovariance
  // decays like lambda^k, so the asymptotic variance of the empirical mean
  // over n draws is
  //
  //   [ pbar(1-pbar) + 2 delta^2 pi_g pi_b lambda/(1-lambda) ] / n,
  //
  // delta = loss_bad - loss_good.  The empirical rate must land within 3
  // sigma of the closed-form steady_state_loss() (plus a tiny burn-in
  // allowance for the chain starting in Good instead of stationarity).
  const double p_gb = 0.05;
  const double p_bg = 0.25;
  const double loss_good = 0.005;
  const double loss_bad = 0.6;
  GilbertElliottLoss loss(p_gb, p_bg, loss_good, loss_bad);
  Rng rng(9);
  int drops = 0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) {
    if (loss.drop_next(rng)) ++drops;
  }
  const double pbar = loss.steady_state_loss();
  const double pi_b = p_gb / (p_gb + p_bg);
  const double pi_g = 1.0 - pi_b;
  const double lambda = 1.0 - p_gb - p_bg;
  const double delta = loss_bad - loss_good;
  const double asym_var = pbar * (1.0 - pbar) +
                          2.0 * delta * delta * pi_g * pi_b *
                              lambda / (1.0 - lambda);
  const double sigma = std::sqrt(asym_var / kN);
  const double burn_in = 1.0 / ((1.0 - lambda) * kN);  // start-state bias
  EXPECT_NEAR(static_cast<double>(drops) / kN, pbar, 3.0 * sigma + burn_in);
}

TEST(GilbertElliottLoss, ProducesBursts) {
  // In the bad state, losses are far more likely than the marginal rate —
  // consecutive drops should be much more common than under Bernoulli with
  // the same marginal loss.
  GilbertElliottLoss ge(0.02, 0.2, 0.0, 0.9);
  BernoulliLoss bern(ge.steady_state_loss());
  Rng rng_a(4);
  Rng rng_b(4);
  auto count_consecutive = [](LossModel& m, Rng& rng) {
    int consecutive = 0;
    bool prev = false;
    for (int i = 0; i < 200000; ++i) {
      const bool d = m.drop_next(rng);
      if (d && prev) ++consecutive;
      prev = d;
    }
    return consecutive;
  };
  const int ge_runs = count_consecutive(ge, rng_a);
  const int bern_runs = count_consecutive(bern, rng_b);
  EXPECT_GT(ge_runs, 5 * bern_runs);
}

TEST(GilbertElliottLoss, MeanBurstLength) {
  GilbertElliottLoss loss(0.1, 0.25, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(loss.mean_burst_length(), 4.0);
}

TEST(GilbertElliottLoss, RejectsInvalidParameters) {
  EXPECT_THROW(GilbertElliottLoss(-0.1, 0.5, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss(0.1, 0.0, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss(0.1, 0.5, 1.0, 0.5), std::invalid_argument);
}

TEST(GilbertElliottLoss, CloneStartsFresh) {
  GilbertElliottLoss loss(1.0, 1.0, 0.0, 1.0);  // alternates states
  Rng rng(5);
  (void)loss.drop_next(rng);  // now in bad state
  EXPECT_TRUE(loss.in_bad_state());
  auto clone = loss.clone();
  auto* ge = dynamic_cast<GilbertElliottLoss*>(clone.get());
  ASSERT_NE(ge, nullptr);
  EXPECT_FALSE(ge->in_bad_state());
}

}  // namespace
}  // namespace chenfd::net
