// Tests for the fast Monte-Carlo engines: NFD-S against the Theorem 5
// closed forms, NFD-E parity with NFD-S, and SFD sanity.

#include <gtest/gtest.h>

#include <string>

#include "core/analysis.hpp"
#include "core/fast_sim.hpp"
#include "dist/constant.hpp"
#include "dist/exponential.hpp"
#include "dist/pareto.hpp"

namespace chenfd::core {
namespace {

StopCriteria quick_stop(std::size_t mistakes = 2000,
                        std::uint64_t max_hb = 10'000'000) {
  StopCriteria s;
  s.target_s_transitions = mistakes;
  s.max_heartbeats = max_hb;
  return s;
}

TEST(FastNfdS, MatchesTheorem5OnExponential) {
  // eta = 1, delta = 1, p_L = 0.01, Exp(0.02): mistakes are frequent
  // enough to collect 20k samples quickly.
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  dist::Exponential d(0.02);
  NfdSAnalysis exact(params, 0.01, d);
  Rng rng(100);
  const auto r = fast_nfd_s_accuracy(params, 0.01, d, rng, quick_stop(20000));
  ASSERT_EQ(r.s_transitions, 20000u);
  EXPECT_NEAR(r.e_tmr(), exact.e_tmr().seconds(),
              0.05 * exact.e_tmr().seconds());
  EXPECT_NEAR(r.e_tm(), exact.e_tm().seconds(),
              0.05 * exact.e_tm().seconds());
  EXPECT_NEAR(r.query_accuracy(), exact.query_accuracy(), 0.002);
  EXPECT_NEAR(r.mistake_rate(), 1.0 / exact.e_tmr().seconds(),
              0.05 / exact.e_tmr().seconds());
}

TEST(FastNfdS, MatchesTheorem5AtLargerDelta) {
  const NfdSParams params{Duration(1.0), Duration(1.5)};
  dist::Exponential d(0.02);
  NfdSAnalysis exact(params, 0.05, d);  // higher loss -> more mistakes
  Rng rng(101);
  const auto r = fast_nfd_s_accuracy(params, 0.05, d, rng, quick_stop(8000));
  EXPECT_NEAR(r.e_tmr(), exact.e_tmr().seconds(),
              0.07 * exact.e_tmr().seconds());
  EXPECT_NEAR(r.e_tm(), exact.e_tm().seconds(),
              0.07 * exact.e_tm().seconds());
}

TEST(FastNfdS, MatchesTheorem5OnPareto) {
  // Heavy tails: exercises the analysis away from the exponential case.
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  const auto d = dist::Pareto::with_mean(0.05, 2.5);
  NfdSAnalysis exact(params, 0.02, d);
  Rng rng(102);
  const auto r = fast_nfd_s_accuracy(params, 0.02, d, rng, quick_stop(8000));
  EXPECT_NEAR(r.e_tmr(), exact.e_tmr().seconds(),
              0.07 * exact.e_tmr().seconds());
}

TEST(FastNfdS, TheoremOneIdentitiesHoldEmpirically) {
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  dist::Exponential d(0.02);
  Rng rng(103);
  const auto r = fast_nfd_s_accuracy(params, 0.02, d, rng, quick_stop(10000));
  // P_A ~= 1 - E(T_M)/E(T_MR) and E(T_G) = E(T_MR) - E(T_M).
  EXPECT_NEAR(r.query_accuracy(), 1.0 - r.e_tm() / r.e_tmr(), 0.01);
  EXPECT_NEAR(r.good_period.mean(), r.e_tmr() - r.e_tm(),
              0.05 * r.e_tmr());
}

TEST(FastNfdS, DeterministicForSameSeed) {
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  dist::Exponential d(0.02);
  Rng a(7);
  Rng b(7);
  const auto ra = fast_nfd_s_accuracy(params, 0.01, d, a, quick_stop(500));
  const auto rb = fast_nfd_s_accuracy(params, 0.01, d, b, quick_stop(500));
  EXPECT_EQ(ra.s_transitions, rb.s_transitions);
  EXPECT_DOUBLE_EQ(ra.e_tmr(), rb.e_tmr());
  EXPECT_DOUBLE_EQ(ra.trust_seconds, rb.trust_seconds);
}

TEST(FastNfdS, HonorsHeartbeatCap) {
  const NfdSParams params{Duration(1.0), Duration(2.5)};
  dist::Exponential d(0.02);
  Rng rng(9);
  StopCriteria stop;
  stop.target_s_transitions = 1u << 30;  // unreachable
  stop.max_heartbeats = 50'000;
  const auto r = fast_nfd_s_accuracy(params, 0.01, d, rng, stop);
  EXPECT_LE(r.heartbeats, 50'001u);
  EXPECT_GT(r.observed_seconds, 0.0);
}

TEST(FastNfdS, MistakeDurationBoundedByEta) {
  // Section 7: E(T_M) of all algorithms was bounded by roughly eta.
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  dist::Exponential d(0.02);
  Rng rng(10);
  const auto r = fast_nfd_s_accuracy(params, 0.01, d, rng, quick_stop(3000));
  EXPECT_LE(r.e_tm(), 1.0);
}

TEST(FastNfdE, CloseToNfdSWithLargeWindow) {
  // The paper: NFD-E with n >= 30 is practically indistinguishable from
  // NFD-U, whose QoS equals NFD-S with delta = E(D) + alpha.
  const double e_d = 0.02;
  const NfdSParams s_params{Duration(1.0), Duration(1.0)};
  const NfdEParams e_params{Duration(1.0), Duration(1.0 - e_d), 32};
  dist::Exponential d(e_d);
  Rng rng_s(11);
  Rng rng_e(12);
  const auto rs =
      fast_nfd_s_accuracy(s_params, 0.01, d, rng_s, quick_stop(8000));
  const auto re =
      fast_nfd_e_accuracy(e_params, 0.01, d, rng_e, quick_stop(8000));
  EXPECT_NEAR(re.e_tmr(), rs.e_tmr(), 0.15 * rs.e_tmr());
  EXPECT_NEAR(re.query_accuracy(), rs.query_accuracy(), 0.005);
}

TEST(FastNfdE, DeterministicForSameSeed) {
  const NfdEParams params{Duration(1.0), Duration(1.0), 32};
  dist::Exponential d(0.02);
  Rng a(13);
  Rng b(13);
  const auto ra = fast_nfd_e_accuracy(params, 0.02, d, a, quick_stop(300));
  const auto rb = fast_nfd_e_accuracy(params, 0.02, d, b, quick_stop(300));
  EXPECT_DOUBLE_EQ(ra.e_tmr(), rb.e_tmr());
}

TEST(FastSfd, TimesOutAtExpectedRate) {
  // SFD with TO = 1 and no losses, constant delay: no mistakes at all.
  const SfdParams params{Duration(1.5), Duration::infinity()};
  dist::Constant d(0.2);
  Rng rng(14);
  StopCriteria stop;
  stop.target_s_transitions = 100;
  stop.max_heartbeats = 200'000;
  const auto r = fast_sfd_accuracy(params, Duration(1.0), 0.0, d, rng, stop);
  EXPECT_EQ(r.s_transitions, 0u);
  EXPECT_NEAR(r.query_accuracy(), 1.0, 1e-9);
}

TEST(FastSfd, LossesCauseMistakes) {
  // Every lost heartbeat forces a timeout gap > TO: with p_L = 0.1 and
  // TO = 1.2 (eta = 1), mistakes happen at roughly the loss rate.
  const SfdParams params{Duration(1.2), Duration::infinity()};
  dist::Constant d(0.01);
  Rng rng(15);
  const auto r =
      fast_sfd_accuracy(params, Duration(1.0), 0.1, d, rng, quick_stop(5000));
  ASSERT_GT(r.s_transitions, 0u);
  // One mistake per maximal run of consecutive losses: S-transitions occur
  // at rate p_L(1 - p_L) per period, so E(T_MR) ~ eta / (p_L(1-p_L)) = 11.1.
  EXPECT_NEAR(r.e_tmr(), 1.0 / (0.1 * 0.9), 0.8);
  // Mistake lasts until the next delivered heartbeat.
  EXPECT_LT(r.e_tm(), 1.2);
}

TEST(FastSfd, AggressiveCutoffActsAsExtraLoss) {
  // Section 7.2's trade-off: at the same TO, a cutoff at c = E(D) discards
  // ~1/e of all heartbeats (Exp delays), which behaves like a ~37% loss
  // rate and wrecks E(T_MR); a cutoff at 8 E(D) discards almost nothing.
  dist::Exponential d(0.02);
  const Duration eta(1.0);
  Rng a(16);
  Rng b(17);
  const auto moderate =
      fast_sfd_accuracy(SfdParams{Duration(1.5), Duration(0.16)}, eta, 0.01,
                        d, a, quick_stop(2000, 20'000'000));
  const auto aggressive =
      fast_sfd_accuracy(SfdParams{Duration(1.5), Duration(0.02)}, eta, 0.01,
                        d, b, quick_stop(2000, 20'000'000));
  EXPECT_LT(20.0 * aggressive.e_tmr(), moderate.e_tmr());
}

TEST(FastSfd, DeterministicForSameSeed) {
  dist::Exponential d(0.02);
  Rng a(18);
  Rng b(18);
  const auto ra = fast_sfd_accuracy(SfdParams{Duration(1.1)}, Duration(1.0),
                                    0.05, d, a, quick_stop(500));
  const auto rb = fast_sfd_accuracy(SfdParams{Duration(1.1)}, Duration(1.0),
                                    0.05, d, b, quick_stop(500));
  EXPECT_DOUBLE_EQ(ra.e_tmr(), rb.e_tmr());
}

TEST(FastSim, RejectsInvalidArguments) {
  dist::Exponential d(0.02);
  Rng rng(19);
  EXPECT_THROW((void)fast_nfd_s_accuracy(
                   NfdSParams{Duration(1.0), Duration(1.0)}, 1.0, d, rng, {}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)fast_sfd_accuracy(SfdParams{Duration(1.0)}, Duration(0.0), 0.01,
                              d, rng, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::core
