// Tests for the Proposition 3 / Theorem 5 analysis, validated against hand
// closed forms on a constant-delay link and structural properties on
// continuous distributions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "dist/constant.hpp"
#include "dist/exponential.hpp"
#include "dist/uniform.hpp"

namespace chenfd::core {
namespace {

TEST(NfdSAnalysis, KIsCeilingOfDeltaOverEta) {
  dist::Exponential d(0.02);
  EXPECT_EQ(NfdSAnalysis(NfdSParams{Duration(1.0), Duration(0.5)}, 0.0, d).k(),
            1);
  EXPECT_EQ(NfdSAnalysis(NfdSParams{Duration(1.0), Duration(1.0)}, 0.0, d).k(),
            1);
  EXPECT_EQ(NfdSAnalysis(NfdSParams{Duration(1.0), Duration(1.5)}, 0.0, d).k(),
            2);
  EXPECT_EQ(NfdSAnalysis(NfdSParams{Duration(1.0), Duration(2.0)}, 0.0, d).k(),
            2);
  EXPECT_EQ(NfdSAnalysis(NfdSParams{Duration(1.0), Duration(2.5)}, 0.0, d).k(),
            3);
  // Robustness to floating-point noise around an integer ratio.
  EXPECT_EQ(NfdSAnalysis(NfdSParams{Duration(0.1), Duration(0.3)}, 0.0, d).k(),
            3);
}

TEST(NfdSAnalysis, ConstantDelayClosedForms) {
  // eta = 1, delta = 0.5, D = 0.2 exactly, p_L = 0.1  (hand-computed).
  dist::Constant d(0.2);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(0.5)}, 0.1, d);
  EXPECT_EQ(a.k(), 1);
  // p_0(x) = 0.1 + 0.9 * [0.2 > 0.5 + x] = 0.1 for all x >= 0.
  EXPECT_DOUBLE_EQ(a.p_j(0, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(a.p_j(0, 0.4), 0.1);
  // p_1(x) = 0.1 + 0.9 * [0.2 > x - 0.5]: 1 below x = 0.7, 0.1 above.
  EXPECT_DOUBLE_EQ(a.p_j(1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.p_j(1, 0.69), 1.0);
  EXPECT_DOUBLE_EQ(a.p_j(1, 0.71), 0.1);
  EXPECT_DOUBLE_EQ(a.p0(), 0.1);
  // q_0 = 0.9 * Pr(D < 1.5) = 0.9.
  EXPECT_DOUBLE_EQ(a.q0(), 0.9);
  // u(0) = 0.1 * 1 = 0.1; p_s = 0.09; E(T_MR) = eta / p_s.
  EXPECT_DOUBLE_EQ(a.u(0.0), 0.1);
  EXPECT_DOUBLE_EQ(a.p_s(), 0.09);
  EXPECT_NEAR(a.e_tmr().seconds(), 1.0 / 0.09, 1e-12);
  // Int u = 0.7 * 0.1 + 0.3 * 0.01 = 0.073 (numerical: step discontinuity).
  EXPECT_NEAR(a.e_tm().seconds(), 0.073 / 0.09, 2e-4);
  EXPECT_NEAR(a.query_accuracy(), 1.0 - 0.073, 2e-5);
  EXPECT_EQ(a.detection_time_bound(), Duration(1.5));
}

TEST(NfdSAnalysis, Proposition14UZeroDominates) {
  dist::Exponential d(0.02);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(2.0)}, 0.01, d);
  const double u0 = a.u(0.0);
  for (double x = 0.0; x < 1.0; x += 0.01) {
    EXPECT_LE(a.u(x), u0 + 1e-15);
  }
  EXPECT_GE(u0, std::pow(a.p0(), a.k()));  // u(0) >= p_0^k
}

TEST(NfdSAnalysis, DegenerateAlwaysTrust) {
  // p_L = 0 and D < delta surely: every m_i arrives before tau_i, q trusts
  // forever after tau_1.
  dist::Constant d(0.2);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(0.5)}, 0.0, d);
  EXPECT_DOUBLE_EQ(a.p0(), 0.0);
  EXPECT_TRUE(a.e_tmr().is_infinite());
  EXPECT_EQ(a.e_tm(), Duration::zero());
  EXPECT_DOUBLE_EQ(a.query_accuracy(), 1.0);
}

TEST(NfdSAnalysis, DegenerateAlwaysSuspect) {
  // D >= delta + eta surely: no message is ever fresh; q suspects forever.
  dist::Constant d(2.0);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(0.5)}, 0.0, d);
  EXPECT_DOUBLE_EQ(a.q0(), 0.0);
  EXPECT_TRUE(a.e_tmr().is_infinite());
  EXPECT_TRUE(a.e_tm().is_infinite());
  EXPECT_DOUBLE_EQ(a.query_accuracy(), 0.0);
}

TEST(NfdSAnalysis, LargerDeltaImprovesAccuracy) {
  // E(T_MR) grows (a lot) with delta at fixed eta; P_A approaches 1.
  dist::Exponential d(0.02);
  double prev_tmr = 0.0;
  double prev_pa = 0.0;
  for (double delta : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(delta)}, 0.01, d);
    EXPECT_GT(a.e_tmr().seconds(), prev_tmr);
    EXPECT_GT(a.query_accuracy(), prev_pa);
    prev_tmr = a.e_tmr().seconds();
    prev_pa = a.query_accuracy();
  }
  EXPECT_GT(prev_pa, 0.999);
}

TEST(NfdSAnalysis, TheoremOneIdentityPa) {
  // P_A computed directly (Lemma 15) equals 1 - E(T_M)/E(T_MR) (Thm 1.2).
  dist::Exponential d(0.02);
  for (double delta : {0.5, 1.0, 2.5}) {
    NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(delta)}, 0.01, d);
    const double via_ratio =
        1.0 - a.e_tm().seconds() / a.e_tmr().seconds();
    EXPECT_NEAR(a.query_accuracy(), via_ratio, 1e-9) << "delta=" << delta;
  }
}

TEST(NfdSAnalysis, MistakeDurationBoundedByEtaOverQ0) {
  // Proposition 21: E(T_M) <= eta / q_0.
  dist::Exponential d(0.02);
  for (double delta : {0.5, 1.0, 1.5, 2.5}) {
    for (double pl : {0.0, 0.01, 0.2}) {
      NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(delta)}, pl, d);
      if (a.p_s() > 0.0) {
        EXPECT_LE(a.e_tm().seconds(), 1.0 / a.q0() + 1e-9);
      }
    }
  }
}

TEST(NfdSAnalysis, PaperFig12AnalyticShape) {
  // The analytic curve of Fig. 12: eta = 1, p_L = 0.01, Exp(0.02).
  // E(T_MR) must grow roughly a factor ~100 per unit of T_D^U (each extra
  // freshness factor contributes ~p_L + tail = ~0.01).
  dist::Exponential d(0.02);
  const double t2 = NfdSAnalysis(NfdSParams{Duration(1.0), Duration(1.0)},
                                 0.01, d)
                        .e_tmr()
                        .seconds();
  const double t3 = NfdSAnalysis(NfdSParams{Duration(1.0), Duration(2.0)},
                                 0.01, d)
                        .e_tmr()
                        .seconds();
  EXPECT_GT(t3 / t2, 50.0);
  EXPECT_LT(t3 / t2, 200.0);
}

TEST(NfdSAnalysis, ForNfdUMatchesShiftedNfdS) {
  dist::Exponential d(0.02);
  const auto via_u = NfdSAnalysis::for_nfd_u(
      NfdUParams{Duration(1.0), Duration(1.5)}, 0.01, d);
  NfdSAnalysis direct(NfdSParams{Duration(1.0), Duration(1.52)}, 0.01, d);
  EXPECT_NEAR(via_u.e_tmr().seconds(), direct.e_tmr().seconds(), 1e-9);
  EXPECT_NEAR(via_u.e_tm().seconds(), direct.e_tm().seconds(), 1e-9);
}

TEST(NfdSAnalysis, FiguresBundle) {
  dist::Exponential d(0.02);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(1.0)}, 0.01, d);
  const auto f = a.figures();
  EXPECT_EQ(f.detection_time_bound, Duration(2.0));
  EXPECT_DOUBLE_EQ(f.mistake_recurrence_mean.seconds(), a.e_tmr().seconds());
  EXPECT_DOUBLE_EQ(f.mistake_duration_mean.seconds(), a.e_tm().seconds());
  EXPECT_NEAR(f.query_accuracy(), a.query_accuracy(), 1e-9);
}

TEST(NfdSAnalysis, RejectsInvalidInput) {
  dist::Exponential d(0.02);
  EXPECT_THROW(
      NfdSAnalysis(NfdSParams{Duration(1.0), Duration(1.0)}, 1.0, d),
      std::invalid_argument);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(1.0)}, 0.0, d);
  EXPECT_THROW((void)a.p_j(-1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)a.p_j(0, -0.5), std::invalid_argument);
}

TEST(NfdSAnalysis, DetectionTimeDistributionDeterministicCase) {
  // No losses, constant tiny delay: every heartbeat is effective (G = 0),
  // so T_D = delta + eta(1 - phi) is uniform on (delta, delta + eta].
  dist::Constant d(0.001);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(1.0)}, 0.0, d);
  EXPECT_NEAR(a.detection_time_mean().seconds(), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(a.detection_time_cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(a.detection_time_cdf(1.0), 0.0);
  EXPECT_NEAR(a.detection_time_cdf(1.2), 0.2, 1e-12);
  EXPECT_NEAR(a.detection_time_cdf(1.9), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(a.detection_time_cdf(2.0), 1.0);
  EXPECT_DOUBLE_EQ(a.detection_time_cdf(5.0), 1.0);
}

TEST(NfdSAnalysis, DetectionTimeDistributionWithLosses) {
  // With loss probability p, G ~ Geometric(q0 ~= 1 - p) shifts mass to
  // earlier detection (possibly before the crash: T_D = 0).
  dist::Constant d(0.001);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(1.0)}, 0.4, d);
  // q0 = 0.6: Pr(G >= 2) = 0.16 puts nonzero mass at T_D = 0.
  EXPECT_GT(a.detection_time_zero_probability(), 0.05);
  EXPECT_LT(a.detection_time_mean().seconds(),
            1.5);  // strictly earlier than the loss-free case
  // CDF is monotone and reaches 1 at the Theorem 5.1 bound.
  double prev = -1.0;
  for (double x = 0.0; x <= 2.0; x += 0.05) {
    const double c = a.detection_time_cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(a.detection_time_cdf(2.0), 1.0);
}

TEST(NfdSAnalysis, DetectionTimeDegenerateAlwaysSuspect) {
  dist::Constant d(5.0);  // every message stale: q suspects forever
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(1.0)}, 0.0, d);
  EXPECT_DOUBLE_EQ(a.detection_time_zero_probability(), 1.0);
  EXPECT_EQ(a.detection_time_mean(), Duration::zero());
}

TEST(NfdSAnalysis, UniformDelayIntegralExact) {
  // Uniform delay on [0, 0.4], eta = 1, delta = 0.5, p_L = 0: k = 1,
  // p_0(x) = Pr(D > 0.5 + x) = 0 for x >= 0;  u(x) = 0: q never suspects
  // once steady (every message arrives by 1.4... wait, losses are 0 and
  // max delay 0.4 < delta, so m_i always arrives before tau_i).
  dist::Uniform d(0.0, 0.4);
  NfdSAnalysis a(NfdSParams{Duration(1.0), Duration(0.5)}, 0.0, d);
  EXPECT_DOUBLE_EQ(a.p0(), 0.0);
  EXPECT_DOUBLE_EQ(a.query_accuracy(), 1.0);
}

}  // namespace
}  // namespace chenfd::core
