// Tests for the leader-election chaos suites (DESIGN.md section 12):
// the smoke suite's oracles hold, results are bit-identical across runner
// job counts, the scripted elector-restart paths (warm latch vs. stale
// cold fallback) are taken by construction, and the analytic bound /
// settle-allowance plumbing is consistent.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "election/chaos.hpp"
#include "runner/parallel_sweep.hpp"

namespace chenfd::election {
namespace {

void expect_bit_identical(const LeaderScenarioResult& a,
                          const LeaderScenarioResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.violations, b.violations);
  // The traces are the raw evidence: every leader change at every process
  // must match to the bit for the BENCH_leader.json files to be identical.
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.qos.exactly_one_leader_fraction,
            b.qos.exactly_one_leader_fraction);
  EXPECT_EQ(a.qos.mean_stability_s, b.qos.mean_stability_s);
  EXPECT_EQ(a.qos.mean_election_latency_s, b.qos.mean_election_latency_s);
  EXPECT_EQ(a.qos.spurious_demotions, b.qos.spurious_demotions);
  EXPECT_EQ(a.qos.total_leader_changes, b.qos.total_leader_changes);
  EXPECT_EQ(a.warm_elector_restarts, b.warm_elector_restarts);
  EXPECT_EQ(a.cold_elector_restarts, b.cold_elector_restarts);
  EXPECT_EQ(a.stale_heartbeats_dropped, b.stale_heartbeats_dropped);
  EXPECT_EQ(a.incarnation_rebases, b.incarnation_rebases);
}

TEST(LeaderChaos, SmokeSuitePassesAndIsJobCountInvariant) {
  const std::vector<LeaderScenarioSpec> specs = leader_suite("leader-smoke");
  ASSERT_EQ(specs.size(), 2u);

  runner::RunnerOptions serial;
  serial.jobs = 1;
  runner::RunnerOptions wide;
  wide.jobs = 4;
  const auto r1 = run_leader_suite(specs, 42, serial);
  const auto r4 = run_leader_suite(specs, 42, wide);
  ASSERT_EQ(r1.size(), specs.size());
  ASSERT_EQ(r4.size(), specs.size());

  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_TRUE(r1[i].ok) << r1[i].name << ": "
                          << (r1[i].violations.empty()
                                  ? std::string{}
                                  : r1[i].violations.front());
    expect_bit_identical(r1[i], r4[i]);
  }
}

TEST(LeaderChaos, WarmElectorRestartRevivesTheLeaderLatch) {
  // The smoke suite's elector-restart scenario crashes a *follower's*
  // elector with a fresh snapshot available: the restart must be warm, the
  // latched leader must survive, and no election may be manufactured.
  const std::vector<LeaderScenarioSpec> specs = leader_suite("leader-smoke");
  ASSERT_EQ(specs[1].name, "smoke-leader-elector-warm");
  ASSERT_TRUE(specs[1].expect_warm_restarts);
  auto streams = runner::make_substreams(42, specs.size());
  const LeaderScenarioResult r = run_leader_scenario(specs[1], streams[1]);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? std::string{}
                                             : r.violations.front());
  EXPECT_GE(r.warm_elector_restarts, 1u);
  EXPECT_EQ(r.cold_elector_restarts, 0u);
  EXPECT_EQ(r.qos.spurious_demotions, 0u);
}

TEST(LeaderChaos, StaleSnapshotForcesColdFallback) {
  // Same scenario, but the snapshot-age ceiling is tightened below the
  // elector downtime: every stored snapshot is stale by the time the
  // elector restarts, so the restore must fall back cold (follower), and
  // the cluster must still satisfy every oracle.
  std::vector<LeaderScenarioSpec> specs = leader_suite("leader-smoke");
  LeaderScenarioSpec spec = specs[1];
  spec.name = "test-leader-elector-stale";
  spec.max_snapshot_age = seconds(5.0);  // < minimum elector downtime
  spec.expect_warm_restarts = false;
  spec.expect_cold_restarts = true;
  auto streams = runner::make_substreams(42, specs.size());
  const LeaderScenarioResult r = run_leader_scenario(spec, streams[1]);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? std::string{}
                                             : r.violations.front());
  EXPECT_EQ(r.warm_elector_restarts, 0u);
  EXPECT_GE(r.cold_elector_restarts, 1u);
}

TEST(LeaderChaos, CrashScenarioRebasesEveryObserverOncePerRecovery) {
  const std::vector<LeaderScenarioSpec> specs = leader_suite("leader-smoke");
  ASSERT_EQ(specs[0].name, "smoke-leader-crash");
  auto streams = runner::make_substreams(42, specs.size());
  const LeaderScenarioResult r = run_leader_scenario(specs[0], streams[0]);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? std::string{}
                                             : r.violations.front());
  // One crash/recover cycle of the victim: each of the size-1 observers
  // sees exactly one incarnation bump.
  EXPECT_EQ(r.incarnation_rebases, specs[0].size - 1);
}

TEST(LeaderChaos, AnalyticBoundAndSettleAllowanceAreConsistent) {
  const LeaderScenarioSpec spec = leader_suite("leader-smoke")[0];
  const Duration bound = analytic_election_bound(spec);
  EXPECT_EQ(bound.seconds(),
            (spec.eta + spec.alpha + spec.bound_margin).seconds());
  const Duration settle = settle_allowance(spec);
  EXPECT_EQ(settle.seconds(),
            (bound + spec.elector.holddown_cap +
             spec.elector.self_claim_delay + spec.elector.restore_grace)
                .seconds());
}

TEST(LeaderChaos, SuiteRegistryListsAndRejects) {
  const std::vector<std::string> names = leader_suite_names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_FALSE(leader_suite(name).empty()) << name;
  }
  EXPECT_THROW((void)leader_suite("leader-nonsense"), std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::election
