// Tests for the chenfd_calc CLI parsing and command logic.

#include <gtest/gtest.h>

#include <sstream>

#include "cli.hpp"

namespace chenfd::cli {
namespace {

TEST(CliParse, CommandAndOptions) {
  const auto args = parse({"configure-exact", "--td", "30", "--mean", "0.02"});
  EXPECT_EQ(args.command, "configure-exact");
  EXPECT_TRUE(args.has("td"));
  EXPECT_DOUBLE_EQ(args.require("td"), 30.0);
  EXPECT_DOUBLE_EQ(*args.number("mean"), 0.02);
  EXPECT_FALSE(args.number("tmr").has_value());
}

TEST(CliParse, Errors) {
  EXPECT_THROW((void)parse({}), std::invalid_argument);
  EXPECT_THROW((void)parse({"cmd", "stray"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"cmd", "--td"}), std::invalid_argument);
  const auto bad = parse({"cmd", "--td", "3x"});
  EXPECT_THROW((void)bad.require("td"), std::invalid_argument);
  const auto missing = parse({"cmd"});
  EXPECT_THROW((void)missing.require("td"), std::invalid_argument);
}

TEST(CliDistribution, Families) {
  EXPECT_NEAR(
      make_distribution(parse({"c", "--mean", "0.02"}))->mean(), 0.02, 1e-12);
  EXPECT_NEAR(make_distribution(
                  parse({"c", "--dist", "uniform", "--lo", "0", "--hi", "4"}))
                  ->mean(),
              2.0, 1e-12);
  EXPECT_NEAR(make_distribution(
                  parse({"c", "--dist", "lognormal", "--mean", "0.1",
                         "--var", "0.01"}))
                  ->variance(),
              0.01, 1e-12);
  EXPECT_NEAR(make_distribution(parse({"c", "--dist", "pareto", "--mean",
                                       "0.1", "--alpha", "2.5"}))
                  ->mean(),
              0.1, 1e-12);
  EXPECT_NEAR(make_distribution(parse({"c", "--dist", "erlang", "--mean",
                                       "0.1", "--stages", "4"}))
                  ->mean(),
              0.1, 1e-12);
  EXPECT_NEAR(make_distribution(parse({"c", "--dist", "weibull", "--mean",
                                       "0.1", "--shape", "0.7"}))
                  ->mean(),
              0.1, 1e-9);
  EXPECT_NEAR(make_distribution(
                  parse({"c", "--dist", "constant", "--value", "0.5"}))
                  ->mean(),
              0.5, 1e-12);
  EXPECT_THROW(
      (void)make_distribution(parse({"c", "--dist", "cauchy"})),
      std::invalid_argument);
}

TEST(CliRun, ConfigureExactPaperExample) {
  std::ostringstream os;
  const int rc = run_main({"configure-exact", "--td", "30", "--tmr",
                           "2592000", "--tm", "60", "--ploss", "0.01",
                           "--mean", "0.02"},
                          os);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(os.str().find("eta"), std::string::npos);
  EXPECT_NE(os.str().find("9.97"), std::string::npos);  // the paper's value
}

TEST(CliRun, ConfigureMomentsPaperExample) {
  std::ostringstream os;
  const int rc = run_main({"configure-moments", "--td", "30", "--tmr",
                           "2592000", "--tm", "60", "--ploss", "0.01",
                           "--mean", "0.02", "--var", "0.02"},
                          os);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(os.str().find("9.70"), std::string::npos);  // 9.709... printed
}

TEST(CliRun, ConfigureNfdU) {
  std::ostringstream os;
  const int rc = run_main({"configure-nfdu", "--td", "29.98", "--tmr",
                           "2592000", "--tm", "60", "--ploss", "0.01",
                           "--var", "0.02"},
                          os);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
}

TEST(CliRun, Analyze) {
  std::ostringstream os;
  const int rc = run_main({"analyze", "--eta", "1", "--delta", "1",
                           "--ploss", "0.01", "--mean", "0.02"},
                          os);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(os.str().find("E(T_MR)"), std::string::npos);
  EXPECT_NE(os.str().find("P_A"), std::string::npos);
}

TEST(CliRun, UnachievableReturnsOne) {
  std::ostringstream os;
  const int rc = run_main({"configure-exact", "--td", "30", "--tmr", "100",
                           "--tm", "60", "--ploss", "0", "--dist",
                           "constant", "--value", "50"},
                          os);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(os.str().find("cannot be achieved"), std::string::npos);
}

TEST(CliRun, SimulateMatchesAnalytic) {
  std::ostringstream os;
  const int rc = run_main({"simulate", "--eta", "1", "--delta", "1",
                           "--ploss", "0.01", "--mean", "0.02",
                           "--mistakes", "500", "--seed", "7"},
                          os);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(os.str().find("measured"), std::string::npos);
  EXPECT_NE(os.str().find("500 mistakes"), std::string::npos);
}

TEST(CliRun, UsageErrors) {
  std::ostringstream os;
  EXPECT_EQ(run_main({}, os), 2);
  EXPECT_EQ(run_main({"no-such-command"}, os), 2);
  EXPECT_EQ(run_main({"analyze", "--eta", "abc"}, os), 2);
  EXPECT_EQ(run_main({"help"}, os), 0);
  EXPECT_NE(os.str().find("chenfd_calc"), std::string::npos);
}

}  // namespace
}  // namespace chenfd::cli
