// Unit tests for the heartbeat sender (process p).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/clock.hpp"
#include "core/heartbeat_sender.hpp"
#include "dist/constant.hpp"
#include "net/link.hpp"
#include "net/loss_model.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {
namespace {

struct Fixture {
  sim::Simulator sim;
  clk::OffsetClock clock{Duration::zero()};
  net::Link link{sim, std::make_unique<dist::Constant>(0.001),
                 std::make_unique<net::BernoulliLoss>(0.0), Rng(1)};
  std::vector<net::Message> delivered;

  explicit Fixture(Duration offset = Duration::zero()) : clock(offset) {
    link.set_receiver([this](const net::Message& m, TimePoint) {
      delivered.push_back(m);
    });
  }
};

TEST(HeartbeatSender, SendsEveryEta) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.start();
  f.sim.run_until(TimePoint(5.5));
  ASSERT_EQ(f.delivered.size(), 5u);
  for (std::size_t i = 0; i < f.delivered.size(); ++i) {
    EXPECT_EQ(f.delivered[i].seq, i + 1);
    EXPECT_DOUBLE_EQ(f.delivered[i].sent_real.seconds(),
                     static_cast<double>(i + 1));
  }
}

TEST(HeartbeatSender, TimestampsWithLocalClock) {
  Fixture f(Duration(100.0));  // p's clock is 100s ahead
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.start();
  f.sim.run_until(TimePoint(2.5));
  // The schedule runs in real time (drift-free clocks make the two
  // equivalent), but timestamps carry p's local reading.
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_DOUBLE_EQ(f.delivered[0].sent_real.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(f.delivered[0].sender_timestamp.seconds(), 101.0);
  EXPECT_DOUBLE_EQ(f.delivered[1].sender_timestamp.seconds(), 102.0);
}

TEST(HeartbeatSender, CrashStopsSending) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.crash_at(TimePoint(3.5));
  sender.start();
  f.sim.run_until(TimePoint(10.0));
  EXPECT_EQ(f.delivered.size(), 3u);  // m_1..m_3; m_4 at t=4 is after crash
  EXPECT_TRUE(sender.crashed());
  ASSERT_TRUE(sender.crash_time().has_value());
  EXPECT_EQ(*sender.crash_time(), TimePoint(3.5));
}

TEST(HeartbeatSender, CrashExactlyAtSendTimeSuppressesIt) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.crash_at(TimePoint(2.0));
  sender.start();
  f.sim.run_until(TimePoint(10.0));
  EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(HeartbeatSender, EarliestCrashWins) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.crash_at(TimePoint(2.5));
  sender.crash_at(TimePoint(8.0));  // later: ignored
  sender.start();
  f.sim.run_until(TimePoint(10.0));
  EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(HeartbeatSender, SetEtaReschedules) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.start();
  f.sim.run_until(TimePoint(3.0));  // m_1..m_3 sent at 1, 2, 3
  sender.set_eta(seconds(2.0));
  // m_4 at 5, m_5 at 7, m_6 at 9 (+1ms link delay before delivery).
  f.sim.run_until(TimePoint(9.5));
  ASSERT_EQ(f.delivered.size(), 6u);
  EXPECT_DOUBLE_EQ(f.delivered[3].sent_real.seconds(), 5.0);
  EXPECT_DOUBLE_EQ(f.delivered[4].sent_real.seconds(), 7.0);
  EXPECT_DOUBLE_EQ(f.delivered[5].sent_real.seconds(), 9.0);
  // Sequence numbers keep increasing across the rate change.
  EXPECT_EQ(f.delivered[5].seq, 6u);
}

TEST(HeartbeatSender, SetEtaToShorterSendsSooner) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(10.0));
  sender.start();
  f.sim.run_until(TimePoint(10.5));  // m_1 at 10
  ASSERT_EQ(f.delivered.size(), 1u);
  sender.set_eta(seconds(1.0));
  f.sim.run_until(TimePoint(13.5));  // m_2 at 11, m_3 at 12, m_4 at 13
  EXPECT_EQ(f.delivered.size(), 4u);
  EXPECT_DOUBLE_EQ(f.delivered[1].sent_real.seconds(), 11.0);
}

TEST(HeartbeatSender, RejectsMisuse) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  EXPECT_THROW(HeartbeatSender(f.sim, f.link, f.clock, seconds(0.0)),
               std::invalid_argument);
  sender.start();
  EXPECT_THROW(sender.start(), std::invalid_argument);
  EXPECT_THROW(sender.set_eta(seconds(-1.0)), std::invalid_argument);
  f.sim.run_until(TimePoint(5.0));
  EXPECT_THROW(sender.crash_at(TimePoint(4.0)), std::invalid_argument);
}

TEST(HeartbeatSender, RecoveryResumesWithContiguousSequence) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.crash_at(TimePoint(3.5));
  sender.recover_at(TimePoint(7.25));
  sender.start();
  f.sim.run_until(TimePoint(10.0));
  // m_1..m_3 at 1..3; the recovered process re-announces immediately at
  // 7.25 and resumes every eta: m_4 at 7.25, m_5 at 8.25, m_6 at 9.25.
  ASSERT_EQ(f.delivered.size(), 6u);
  EXPECT_DOUBLE_EQ(f.delivered[3].sent_real.seconds(), 7.25);
  EXPECT_DOUBLE_EQ(f.delivered[4].sent_real.seconds(), 8.25);
  EXPECT_DOUBLE_EQ(f.delivered[5].sent_real.seconds(), 9.25);
  // Sequence numbers continue across the outage (recovery, not restart).
  EXPECT_EQ(f.delivered[3].seq, 4u);
  EXPECT_FALSE(sender.crashed());
  EXPECT_EQ(sender.recoveries(), 1u);
  // crash_time() keeps reporting the most recent effective crash.
  ASSERT_TRUE(sender.crash_time().has_value());
  EXPECT_EQ(*sender.crash_time(), TimePoint(3.5));
}

TEST(HeartbeatSender, CrashRecoverCrashCycle) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.crash_at(TimePoint(2.5));
  sender.recover_at(TimePoint(5.0));
  sender.crash_at(TimePoint(7.5));
  sender.recover_at(TimePoint(9.0));
  sender.start();
  f.sim.run_until(TimePoint(10.5));
  // m_1 at 1, m_2 at 2 | down | m_3 at 5, m_4 at 6, m_5 at 7 | down |
  // m_6 at 9, m_7 at 10.
  ASSERT_EQ(f.delivered.size(), 7u);
  EXPECT_DOUBLE_EQ(f.delivered[2].sent_real.seconds(), 5.0);
  EXPECT_DOUBLE_EQ(f.delivered[4].sent_real.seconds(), 7.0);
  EXPECT_DOUBLE_EQ(f.delivered[5].sent_real.seconds(), 9.0);
  EXPECT_EQ(f.delivered[6].seq, 7u);
  EXPECT_EQ(sender.recoveries(), 2u);
  EXPECT_FALSE(sender.crashed());
  EXPECT_EQ(*sender.crash_time(), TimePoint(7.5));
}

TEST(HeartbeatSender, RecoveryOfAnAlreadyCrashedSender) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  sender.crash_at(TimePoint(2.5));
  sender.start();
  f.sim.run_until(TimePoint(6.0));  // crash took effect at 2.5
  EXPECT_TRUE(sender.crashed());
  sender.recover_at(TimePoint(8.0));
  f.sim.run_until(TimePoint(9.5));
  // m_1, m_2 before the crash, then m_3 at 8, m_4 at 9.
  EXPECT_EQ(f.delivered.size(), 4u);
  EXPECT_FALSE(sender.crashed());
}

TEST(HeartbeatSender, RejectsFaultScheduleMisuse) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  // Recovery with no crash scheduled at all.
  EXPECT_THROW(sender.recover_at(TimePoint(5.0)), std::invalid_argument);
  sender.crash_at(TimePoint(4.0));
  // Recovery must not precede its crash.
  EXPECT_THROW(sender.recover_at(TimePoint(3.0)), std::invalid_argument);
  sender.recover_at(TimePoint(6.0));
  // Two recoveries back to back violate the alternation.
  EXPECT_THROW(sender.recover_at(TimePoint(8.0)), std::invalid_argument);
  // A crash before the scheduled recovery violates the time order.
  EXPECT_THROW(sender.crash_at(TimePoint(5.0)), std::invalid_argument);
  // In the past.
  f.sim.run_until(TimePoint(10.0));
  EXPECT_THROW(sender.recover_at(TimePoint(9.0)), std::invalid_argument);
}

TEST(HeartbeatSender, NextSeqTracksSends) {
  Fixture f;
  HeartbeatSender sender(f.sim, f.link, f.clock, seconds(1.0));
  EXPECT_EQ(sender.next_seq(), 1u);
  sender.start();
  f.sim.run_until(TimePoint(3.0));
  EXPECT_EQ(sender.next_seq(), 4u);
}

}  // namespace
}  // namespace chenfd::core
