// Unit tests for Welford online statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/online_stats.hpp"

namespace chenfd::stats {
namespace {

TEST(OnlineStats, EmptyIsNaN) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.sample_variance()));
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SampleVarianceUsesNMinusOne) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(OnlineStats, MatchesTwoPassComputation) {
  Rng rng(31);
  std::vector<double> xs;
  OnlineStats s;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-5.0, 17.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-8);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(32);
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(OnlineStats, MergeManyChunksMatchesSingleStream) {
  // The parallel runner reduces one accumulator per task in index order;
  // chunked merging must agree with the single-stream result to tight
  // tolerance whatever the chunk count.
  Rng rng(77);
  OnlineStats all;
  std::vector<OnlineStats> chunks(7);
  for (int i = 0; i < 7000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    chunks[static_cast<std::size_t>(i) % chunks.size()].add(x);
  }
  OnlineStats merged;
  for (const auto& c : chunks) merged.merge(c);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-8);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  // Welford should not catastrophically cancel with a large common offset.
  OnlineStats s;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.5, 1e-3);
  EXPECT_NEAR(s.variance(), 1.25, 1e-3);
}

}  // namespace
}  // namespace chenfd::stats
