// Cross-validation of the compiled delay samplers against their dist/
// references: kind classification, moments, quantiles, batch/scalar draw
// equivalence, the ziggurat itself, and the geometric loss skipper.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sampler.hpp"
#include "dist/constant.hpp"
#include "dist/empirical.hpp"
#include "dist/erlang.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/shifted.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"

namespace chenfd::core {
namespace {

constexpr std::size_t kDraws = 200'000;

struct Moments {
  double mean;
  double variance;
};

Moments sample_moments(const CompiledSampler& s, std::uint64_t seed,
                       std::size_t n = kDraws) {
  Rng rng(seed);
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = s.sample(rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / static_cast<double>(n);
  return {mean, sq / static_cast<double>(n) - mean * mean};
}

/// Moments of the compiled sampler must match the analytic moments of the
/// source distribution within Monte-Carlo noise.  Tolerances are loose
/// enough to be seed-stable (4-5 sigma) yet tight enough to catch a wrong
/// parameter mapping (which shifts moments by O(1) factors).
void expect_moments_match(const dist::DelayDistribution& d,
                          std::uint64_t seed, double mean_tol,
                          double var_tol) {
  const CompiledSampler s(d);
  const Moments m = sample_moments(s, seed);
  EXPECT_NEAR(m.mean, d.mean(), mean_tol * std::max(1e-12, d.mean()))
      << d.name();
  EXPECT_NEAR(m.variance, d.variance(),
              var_tol * std::max(1e-12, d.variance()))
      << d.name();
}

/// Empirical quantiles of compiled draws vs the reference quantile
/// function, checked at body and moderate-tail probabilities.
void expect_quantiles_match(const dist::DelayDistribution& d,
                            std::uint64_t seed, double rel_tol) {
  const CompiledSampler s(d);
  Rng rng(seed);
  std::vector<double> draws(kDraws);
  s.fill(rng, draws.data(), draws.size());
  std::sort(draws.begin(), draws.end());
  for (const double u : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double expected = d.quantile(u);
    const double got =
        draws[static_cast<std::size_t>(u * (kDraws - 1))];
    EXPECT_NEAR(got, expected, rel_tol * std::max(1e-12, expected))
        << d.name() << " at u = " << u;
  }
}

// ---- kind classification -------------------------------------------------

TEST(CompiledSampler, ClassifiesFamilies) {
  EXPECT_EQ(CompiledSampler(dist::Exponential(0.02)).kind(),
            CompiledSampler::Kind::kExponential);
  EXPECT_EQ(CompiledSampler(dist::Erlang(3, 100.0)).kind(),
            CompiledSampler::Kind::kErlang);
  EXPECT_EQ(CompiledSampler(dist::Constant(0.5)).kind(),
            CompiledSampler::Kind::kConstant);
  EXPECT_EQ(CompiledSampler(dist::Uniform(0.1, 0.4)).kind(),
            CompiledSampler::Kind::kUniform);
  EXPECT_EQ(CompiledSampler(dist::Pareto::with_mean(0.05, 2.5)).kind(),
            CompiledSampler::Kind::kPareto);
  EXPECT_EQ(CompiledSampler(dist::Weibull(1.5, 0.02)).kind(),
            CompiledSampler::Kind::kWeibull);
  EXPECT_EQ(CompiledSampler(dist::LogNormal(-4.0, 0.5)).kind(),
            CompiledSampler::Kind::kTable);
  const std::vector<double> obs{0.01, 0.02, 0.03, 0.05};
  EXPECT_EQ(CompiledSampler(dist::Empirical(obs)).kind(),
            CompiledSampler::Kind::kEmpirical);
}

TEST(CompiledSampler, FoldsShiftedWrappers) {
  // Shifted(Shifted(Exp)) compiles to the exponential kind with the offsets
  // folded into the sampler, not to a table.
  auto inner = std::make_unique<dist::Shifted>(
      0.1, std::make_unique<dist::Exponential>(0.02));
  const dist::Shifted outer(0.05, std::move(inner));
  const CompiledSampler s(outer);
  EXPECT_EQ(s.kind(), CompiledSampler::Kind::kExponential);
  const Moments m = sample_moments(s, 7);
  EXPECT_NEAR(m.mean, outer.mean(), 0.01 * outer.mean());
}

// ---- moments per family --------------------------------------------------

TEST(CompiledSampler, ExponentialMoments) {
  expect_moments_match(dist::Exponential(0.02), 11, 0.02, 0.05);
}

TEST(CompiledSampler, ErlangMoments) {
  expect_moments_match(dist::Erlang(4, 200.0), 12, 0.02, 0.05);
}

TEST(CompiledSampler, ConstantIsExact) {
  const CompiledSampler s(dist::Constant(0.125));
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0.125);
}

TEST(CompiledSampler, UniformMoments) {
  expect_moments_match(dist::Uniform(0.1, 0.4), 14, 0.01, 0.05);
}

TEST(CompiledSampler, ParetoMoments) {
  // alpha = 3.5 keeps the variance finite and the MC estimate stable.
  expect_moments_match(dist::Pareto::with_mean(0.05, 3.5), 15, 0.02, 0.2);
}

TEST(CompiledSampler, WeibullMoments) {
  expect_moments_match(dist::Weibull(1.5, 0.02), 16, 0.02, 0.05);
}

TEST(CompiledSampler, EmpiricalBootstrapsRetainedSamples) {
  const std::vector<double> obs{0.01, 0.02, 0.03, 0.05, 0.08};
  const dist::Empirical d(obs);
  const CompiledSampler s(d);
  Rng rng(17);
  std::vector<int> hits(obs.size(), 0);
  for (std::size_t i = 0; i < 50'000; ++i) {
    const double x = s.sample(rng);
    const auto it = std::find(obs.begin(), obs.end(), x);
    ASSERT_NE(it, obs.end()) << "draw not in the retained sample set";
    ++hits[static_cast<std::size_t>(it - obs.begin())];
  }
  // Bootstrap resampling is uniform over the retained samples.
  for (const int h : hits) EXPECT_NEAR(h, 10'000, 600);
}

// ---- table fallback (lognormal has no closed-form inverse here) ---------

TEST(CompiledSampler, TableMatchesLognormalMoments) {
  expect_moments_match(dist::LogNormal(-4.0, 0.5), 18, 0.02, 0.06);
}

TEST(CompiledSampler, TableMatchesLognormalQuantiles) {
  expect_quantiles_match(dist::LogNormal(-4.0, 0.5), 19, 0.03);
}

TEST(CompiledSampler, QuantilesMatchOnClosedFormFamilies) {
  expect_quantiles_match(dist::Exponential(0.02), 20, 0.05);
  expect_quantiles_match(dist::Weibull(1.5, 0.02), 21, 0.05);
}

// ---- batch/scalar equivalence -------------------------------------------

TEST(CompiledSampler, FillMatchesRepeatedSampleBitForBit) {
  // fill() must consume the generator exactly like n sample() calls, or
  // batched and scalar code paths would diverge stream-wise.
  const std::vector<double> obs{0.01, 0.02, 0.03};
  std::vector<std::unique_ptr<dist::DelayDistribution>> sources;
  sources.push_back(std::make_unique<dist::Exponential>(0.02));
  sources.push_back(std::make_unique<dist::Erlang>(3, 150.0));
  sources.push_back(std::make_unique<dist::Constant>(0.3));
  sources.push_back(std::make_unique<dist::Uniform>(0.0, 0.1));
  sources.push_back(std::make_unique<dist::Pareto>(
      dist::Pareto::with_mean(0.05, 2.5)));
  sources.push_back(std::make_unique<dist::Weibull>(1.5, 0.02));
  sources.push_back(std::make_unique<dist::LogNormal>(-4.0, 0.5));
  sources.push_back(std::make_unique<dist::Empirical>(obs));
  for (const auto& d : sources) {
    const CompiledSampler s(*d);
    Rng batch_rng(99);
    Rng scalar_rng(99);
    std::vector<double> batch(1000);
    s.fill(batch_rng, batch.data(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch[i], s.sample(scalar_rng))
          << d->name() << " diverges at draw " << i;
    }
    // Generators must be in the same state afterwards too.
    EXPECT_EQ(batch_rng(), scalar_rng()) << d->name();
  }
}

// ---- the ziggurat itself -------------------------------------------------

TEST(ExpZiggurat, StandardExponentialMoments) {
  const ExpZiggurat& z = ExpZiggurat::instance();
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr std::size_t n = 500'000;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = z(rng);
    ASSERT_GE(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(sq / n - mean * mean, 1.0, 0.03);
}

TEST(ExpZiggurat, TailMassBeyondLayerStartIsExponential) {
  // Pr(X > R) = e^{-R}; with R ~ 7.7 that is ~4.5e-4 — the tail branch must
  // fire at the right rate or extreme delays would be mis-weighted.
  const ExpZiggurat& z = ExpZiggurat::instance();
  Rng rng(24);
  constexpr std::size_t n = 2'000'000;
  std::size_t beyond = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (z(rng) > ExpZiggurat::kTailStart) ++beyond;
  }
  const double expected = std::exp(-ExpZiggurat::kTailStart) * n;
  EXPECT_NEAR(static_cast<double>(beyond), expected,
              5.0 * std::sqrt(expected));
}

// ---- loss skipper --------------------------------------------------------

TEST(LossSkipper, MatchesBernoulliLossRate) {
  const double p = 0.01;
  Rng rng(25);
  LossSkipper skip(p, rng);
  constexpr std::uint64_t n = 1'000'000;
  std::uint64_t losses = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (skip.next_lost() == i) {
      ++losses;
      skip.advance(rng);
    }
  }
  // Binomial(n, p): sd ~ sqrt(n p (1-p)) ~ 99.5.
  EXPECT_NEAR(static_cast<double>(losses), p * n, 500.0);
}

TEST(LossSkipper, GapsFollowGeometricLaw) {
  const double p = 0.05;
  Rng rng(26);
  LossSkipper skip(p, rng);
  std::uint64_t prev = skip.next_lost();
  double gap_sum = static_cast<double>(prev);
  constexpr std::size_t kLosses = 100'000;
  for (std::size_t i = 1; i < kLosses; ++i) {
    skip.advance(rng);
    ASSERT_GT(skip.next_lost(), prev) << "loss offsets must increase";
    gap_sum += static_cast<double>(skip.next_lost() - prev - 1);
    prev = skip.next_lost();
  }
  // Delivered messages between losses ~ Geometric(p): mean (1-p)/p = 19.
  EXPECT_NEAR(gap_sum / kLosses, (1.0 - p) / p, 0.3);
}

TEST(LossSkipper, ZeroLossNeverFires) {
  Rng rng(27);
  const LossSkipper skip(0.0, rng);
  EXPECT_EQ(skip.next_lost(), LossSkipper::kNever);
}

TEST(LossSkipper, RejectsInvalidProbability) {
  Rng rng(28);
  EXPECT_THROW(LossSkipper(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(LossSkipper(1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::core
