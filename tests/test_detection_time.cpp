// Detection-time experiments (Theorem 5.1 and Section 6.2): T_D bounds
// hold on every run, are tight, and the SFD cutoff bound c + TO holds.

#include <gtest/gtest.h>

#include <memory>

#include "clock/clock.hpp"
#include "core/analysis.hpp"
#include "core/experiments.hpp"
#include "core/nfd_e.hpp"
#include "core/nfd_s.hpp"
#include "core/nfd_u.hpp"
#include "core/sfd.hpp"
#include "dist/exponential.hpp"

namespace chenfd::core {
namespace {

constexpr double kEd = 0.02;

DetectionExperiment experiment(std::size_t runs, std::uint64_t seed) {
  DetectionExperiment exp;
  exp.runs = runs;
  exp.seed = seed;
  exp.warmup = seconds(20.0);
  exp.settle = seconds(50.0);
  return exp;
}

TEST(DetectionTime, NfdSBoundHoldsAndIsTight) {
  dist::Exponential delay(kEd);
  const NfdSParams params{Duration(1.0), Duration(2.0)};
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) {
        return std::make_unique<NfdS>(tb.simulator(), params);
      },
      NetworkModel{0.01, delay}, experiment(800, 2001));
  ASSERT_EQ(samples.count(), 800u);
  const double bound = params.detection_time_bound().seconds();
  EXPECT_LE(samples.max(), bound + 1e-9);
  // Tightness: with the crash uniform over a period, some run must land
  // within 10% of the bound.
  EXPECT_GT(samples.max(), bound - 0.15);
  // Typical detection time ~ delta + eta/2 (crash uniform in the period).
  EXPECT_NEAR(samples.mean(), params.delta.seconds() + 0.5, 0.1);
}

TEST(DetectionTime, NfdSNeverInfinite) {
  dist::Exponential delay(kEd);
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) {
        return std::make_unique<NfdS>(tb.simulator(), params);
      },
      NetworkModel{0.05, delay}, experiment(300, 2002));
  EXPECT_FALSE(std::isinf(samples.max()));
}

TEST(DetectionTime, NfdSLossesOnlyShortenDetection) {
  // Losses can make q suspect earlier (already suspecting at the crash),
  // so higher loss -> smaller mean detection time.
  dist::Exponential delay(kEd);
  const NfdSParams params{Duration(1.0), Duration(2.0)};
  const auto make = [&params](Testbed& tb) {
    return std::make_unique<NfdS>(tb.simulator(), params);
  };
  const auto low = measure_detection_times(make, NetworkModel{0.0, delay},
                                           experiment(400, 2003));
  const auto high = measure_detection_times(make, NetworkModel{0.4, delay},
                                            experiment(400, 2003));
  EXPECT_LE(high.mean(), low.mean() + 1e-9);
}

TEST(DetectionTime, NfdURelativeBound) {
  // T_D <= eta + alpha + E(D) for NFD-U with exact EAs (Section 6.2).
  dist::Exponential delay(kEd);
  const NfdUParams params{Duration(1.0), Duration(1.5)};
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<NfdU>(
            tb.simulator(), tb.q_clock(), params, [](net::SeqNo seq) {
              return TimePoint(static_cast<double>(seq) + kEd);
            });
      },
      NetworkModel{0.01, delay}, experiment(500, 2004));
  const double bound = 1.0 + 1.5 + kEd;
  EXPECT_LE(samples.max(), bound + 1e-9);
  EXPECT_GT(samples.max(), bound - 0.2);
}

TEST(DetectionTime, NfdEApproximatelyHonorsRelativeBound) {
  // NFD-E estimates the EAs, so the bound holds up to estimation noise —
  // with 32-sample windows the overshoot is well under one period.
  dist::Exponential delay(kEd);
  const NfdEParams params{Duration(1.0), Duration(1.5), 32};
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<NfdE>(tb.simulator(), tb.q_clock(), params);
      },
      NetworkModel{0.01, delay}, experiment(500, 2005));
  const double bound = 1.0 + 1.5 + kEd;
  EXPECT_LE(samples.max(), bound + 0.1);
  EXPECT_NEAR(samples.mean(), params.alpha.seconds() + kEd + 0.5, 0.15);
}

TEST(DetectionTime, SfdCutoffBound) {
  dist::Exponential delay(kEd);
  const SfdParams params{Duration(2.0), Duration(0.16)};  // c = 8 E(D)
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<Sfd>(tb.simulator(), tb.q_clock(), params);
      },
      NetworkModel{0.01, delay}, experiment(500, 2006));
  EXPECT_LE(samples.max(), params.detection_time_bound().seconds() + 1e-9);
}

TEST(DetectionTime, SfdWithoutCutoffCanExceedNfdSBound) {
  // The paper's second drawback: without a cutoff, SFD's worst-case
  // detection time is TO plus the *maximum* delay.  With a fat delay tail
  // the max over many runs must exceed TO + eta, which a freshness-based
  // detector with the same budget never does.
  dist::Exponential fat(0.6);  // heavy mean delay to make the effect cheap
  const SfdParams params{Duration(2.0)};
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<Sfd>(tb.simulator(), tb.q_clock(), params);
      },
      NetworkModel{0.0, fat}, experiment(400, 2007));
  EXPECT_GT(samples.max(), 2.0 + 1.0);
}

TEST(DetectionTime, AnalyticDistributionMatchesDes) {
  // The closed-form T_D distribution (analysis.hpp extension) against the
  // discrete-event crash experiment, at a loss rate high enough that the
  // geometric term matters.
  dist::Exponential delay(kEd);
  const NfdSParams params{Duration(1.0), Duration(2.0)};
  const double p_loss = 0.2;
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) {
        return std::make_unique<NfdS>(tb.simulator(), params);
      },
      NetworkModel{p_loss, delay}, experiment(1500, 2009));

  NfdSAnalysis a(params, p_loss, delay);
  EXPECT_NEAR(samples.mean(), a.detection_time_mean().seconds(),
              0.05 * a.detection_time_mean().seconds());
  // Compare the CDF at a few probes (empirical tail vs analytic CDF).
  for (double x : {1.0, 1.5, 2.0, 2.5, 2.9}) {
    const double empirical = 1.0 - samples.tail_probability(x);
    EXPECT_NEAR(empirical, a.detection_time_cdf(x), 0.05) << "x=" << x;
  }
}

TEST(DetectionTime, ZeroWhenAlreadySuspecting) {
  // With all messages lost, q suspects from the start: T_D = 0.
  dist::Exponential delay(kEd);
  const NfdSParams params{Duration(1.0), Duration(1.0)};
  const auto samples = measure_detection_times(
      [&params](Testbed& tb) {
        return std::make_unique<NfdS>(tb.simulator(), params);
      },
      NetworkModel{0.999999999, delay}, experiment(50, 2008));
  EXPECT_DOUBLE_EQ(samples.max(), 0.0);
}

}  // namespace
}  // namespace chenfd::core
