// Tests for the fleet subsystem (DESIGN.md §13): the hierarchical timing
// wheel, the sharded FleetMonitor, and the determinism suite that pins the
// drained transition stream to be a pure function of the heartbeat stream —
// independent of shard count and wheel resolution.  The per-pair NfdE
// detector is the reference implementation the single-process parity test
// compares against.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "clock/clock.hpp"
#include "common/rng.hpp"
#include "core/nfd_e.hpp"
#include "fault/fault_plan.hpp"
#include "fleet/fleet_monitor.hpp"
#include "fleet/timing_wheel.hpp"
#include "fleet/workload.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace chenfd::fleet {
namespace {

using Tick = TimingWheel::Tick;
using TimerId = TimingWheel::TimerId;

std::vector<std::pair<Tick, TimerId>> drain_wheel(TimingWheel& wheel,
                                                  Tick to) {
  std::vector<std::pair<Tick, TimerId>> fired;
  wheel.advance(to, [&fired](TimerId id, Tick deadline) {
    fired.emplace_back(deadline, id);
  });
  return fired;
}

// ---- timing wheel -------------------------------------------------------

TEST(TimingWheel, FiresInTickOrder) {
  TimingWheel wheel(8);
  wheel.schedule(0, 5);
  wheel.schedule(1, 3);
  wheel.schedule(2, 9);
  const auto fired = drain_wheel(wheel, 20);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<Tick, TimerId>{3, 1}));
  EXPECT_EQ(fired[1], (std::pair<Tick, TimerId>{5, 0}));
  EXPECT_EQ(fired[2], (std::pair<Tick, TimerId>{9, 2}));
  EXPECT_EQ(wheel.pending_count(), 0u);
}

TEST(TimingWheel, CancelPreventsFiring) {
  TimingWheel wheel(4);
  wheel.schedule(0, 5);
  wheel.schedule(1, 6);
  EXPECT_TRUE(wheel.cancel(0));
  EXPECT_FALSE(wheel.cancel(0));  // already cancelled
  EXPECT_FALSE(wheel.cancel(2));  // never scheduled
  const auto fired = drain_wheel(wheel, 10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second, 1u);
}

TEST(TimingWheel, PendingAndDeadlineAccessors) {
  TimingWheel wheel(4);
  EXPECT_FALSE(wheel.pending(2));
  wheel.schedule(2, 77);
  EXPECT_TRUE(wheel.pending(2));
  EXPECT_EQ(wheel.deadline(2), 77u);
  EXPECT_EQ(wheel.pending_count(), 1u);
  EXPECT_EQ(wheel.capacity(), 4u);
}

TEST(TimingWheel, MultiLevelCascadesFireAtExactTicks) {
  // One deadline per wheel level: 100 (level 1), 5000 (level 2), 300000
  // (level 3), plus one just past the first slot (level 0 after cascades).
  TimingWheel wheel(4);
  wheel.schedule(0, 100);
  wheel.schedule(1, 5'000);
  wheel.schedule(2, 300'000);
  wheel.schedule(3, 63);
  const auto fired = drain_wheel(wheel, 300'000);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], (std::pair<Tick, TimerId>{63, 3}));
  EXPECT_EQ(fired[1], (std::pair<Tick, TimerId>{100, 0}));
  EXPECT_EQ(fired[2], (std::pair<Tick, TimerId>{5'000, 1}));
  EXPECT_EQ(fired[3], (std::pair<Tick, TimerId>{300'000, 2}));
}

TEST(TimingWheel, ExpiredTimerMayRescheduleFromTheCallback) {
  TimingWheel wheel(1);
  wheel.schedule(0, 2);
  std::vector<Tick> fired;
  wheel.advance(10, [&](TimerId id, Tick deadline) {
    fired.push_back(deadline);
    if (deadline < 8) wheel.schedule(id, deadline + 2);
  });
  EXPECT_EQ(fired, (std::vector<Tick>{2, 4, 6, 8}));
}

TEST(TimingWheel, TopLevelDigitWrapDoesNotMisfile) {
  // The clamp case: a deadline across the 64^4 tick boundary XORs digits
  // above the top level even though the delta is tiny.  The entry must
  // neither index out of range nor fire early/late.
  TimingWheel wheel(2);
  const Tick boundary = Tick{1} << 24;  // 64^4
  drain_wheel(wheel, boundary - 3);     // now = boundary - 3
  wheel.schedule(0, boundary + 1);      // crosses the boundary, delta = 4
  wheel.schedule(1, boundary - 1);      // same rotation, delta = 2
  const auto fired = drain_wheel(wheel, boundary + 5);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<Tick, TimerId>{boundary - 1, 1}));
  EXPECT_EQ(fired[1], (std::pair<Tick, TimerId>{boundary + 1, 0}));
}

TEST(TimingWheel, ClearDropsEverythingWithoutFiring) {
  TimingWheel wheel(3);
  drain_wheel(wheel, 10);
  wheel.schedule(0, 15);
  wheel.schedule(1, 2'000);
  wheel.clear();
  EXPECT_EQ(wheel.pending_count(), 0u);
  EXPECT_EQ(wheel.now(), 10u);  // time does not rewind
  EXPECT_TRUE(drain_wheel(wheel, 3'000).empty());
}

TEST(TimingWheel, RejectsContractViolations) {
  TimingWheel wheel(2);
  drain_wheel(wheel, 10);
  wheel.schedule(0, 20);
  EXPECT_THROW(wheel.schedule(0, 25), std::invalid_argument);  // pending
  EXPECT_THROW(wheel.schedule(1, 10), std::invalid_argument);  // not future
  EXPECT_THROW(wheel.schedule(1, 5), std::invalid_argument);   // in the past
  EXPECT_THROW(wheel.schedule(1, 10 + TimingWheel::kMaxDelta),
               std::invalid_argument);                         // horizon
  EXPECT_THROW(wheel.schedule(2, 20), std::invalid_argument);  // id range
  EXPECT_THROW((void)wheel.pending(7), std::invalid_argument);
  EXPECT_THROW((void)wheel.deadline(1), std::invalid_argument);
}

TEST(TimingWheel, RandomizedCrossCheckAgainstEventQueue) {
  // The wheel must fire exactly the same (tick, id) multiset as the
  // reference heap, in tick order.  Intra-tick order is implementation-
  // defined for both (wheel: LIFO slot chains; queue: FIFO), so firings
  // are compared grouped per tick.
  constexpr std::size_t kTimers = 192;
  TimingWheel wheel(kTimers);
  sim::EventQueue queue;
  std::map<TimerId, sim::EventId> queue_ids;
  std::map<Tick, std::vector<TimerId>> queue_fired;
  Rng rng(20260808);

  const auto random_deadline = [&](Tick now) {
    return now + 1 + rng() % 200'000;
  };
  for (TimerId id = 0; id < kTimers; ++id) {
    const Tick tick = random_deadline(0);
    wheel.schedule(id, tick);
    queue_ids[id] = queue.schedule(
        TimePoint(static_cast<double>(tick)),
        [&queue_fired, id, tick] { queue_fired[tick].push_back(id); });
  }

  Tick now = 0;
  for (int round = 0; round < 50; ++round) {
    // Mutate ~a third of the timers: cancel some, reschedule others.
    for (TimerId id = 0; id < kTimers; ++id) {
      const std::uint64_t dice = rng() % 6;
      if (dice == 0 && wheel.pending(id)) {
        ASSERT_TRUE(wheel.cancel(id));
        ASSERT_TRUE(queue.cancel(queue_ids[id]));
      } else if (dice == 1) {
        if (wheel.pending(id)) {
          wheel.cancel(id);
          queue.cancel(queue_ids[id]);
        }
        const Tick tick = random_deadline(now);
        wheel.schedule(id, tick);
        queue_ids[id] = queue.schedule(
            TimePoint(static_cast<double>(tick)),
            [&queue_fired, id, tick] { queue_fired[tick].push_back(id); });
      }
    }
    now += 1 + rng() % 9'000;
    std::map<Tick, std::vector<TimerId>> wheel_fired;
    wheel.advance(now, [&wheel_fired](TimerId id, Tick deadline) {
      wheel_fired[deadline].push_back(id);
    });
    queue_fired.clear();
    while (auto next = queue.next_time()) {
      if (next->seconds() > static_cast<double>(now)) break;
      auto ev = queue.pop();
      ASSERT_TRUE(ev.has_value());
      ev->second();
    }
    for (auto& [tick, ids] : wheel_fired) std::sort(ids.begin(), ids.end());
    for (auto& [tick, ids] : queue_fired) std::sort(ids.begin(), ids.end());
    ASSERT_EQ(wheel_fired, queue_fired) << "diverged in round " << round;
  }
  EXPECT_EQ(wheel.pending_count(), queue.pending());
}

// ---- fleet monitor ------------------------------------------------------

core::NfdEParams params_w8() {
  return core::NfdEParams{seconds(1.0), seconds(0.5), 8};
}

FleetOptions fleet_options(std::size_t processes, std::size_t shards,
                           core::NfdEParams params = params_w8()) {
  FleetOptions fo;
  fo.processes = processes;
  fo.shards = shards;
  fo.params = params;
  return fo;
}

Heartbeat hb(ProcessIndex p, net::SeqNo seq, double at,
             std::uint32_t incarnation = 0) {
  return Heartbeat{p, incarnation, seq, TimePoint(at)};
}

/// Reference NfdE run: delivers (seq, arrival) pairs through the simulator
/// and returns the transition log.
std::vector<chenfd::Transition> nfd_e_reference(
    const core::NfdEParams& params,
    const std::vector<std::pair<net::SeqNo, double>>& arrivals,
    double horizon) {
  sim::Simulator sim;
  clk::SynchronizedClock clock;
  core::NfdE detector(sim, clock, params);
  std::vector<chenfd::Transition> log;
  detector.add_listener(
      [&log](const chenfd::Transition& t) { log.push_back(t); });
  detector.activate();
  for (const auto& [seq, at] : arrivals) {
    net::Message m;
    m.seq = seq;
    m.sent_real = TimePoint(static_cast<double>(seq));
    m.sender_timestamp = m.sent_real;
    sim.at(TimePoint(at), [&detector, m, at] {
      detector.on_heartbeat(m, TimePoint(at));
    });
  }
  sim.run_until(TimePoint(horizon));
  return log;
}

TEST(FleetMonitor, SingleProcessMatchesNfdEReference) {
  // The engine is NFD-E in struct-of-arrays clothing: on one process its
  // transition stream must match the per-pair detector timestamp-for-
  // timestamp, including the mid-run suspicion from the lost heartbeat.
  const std::vector<std::pair<net::SeqNo, double>> arrivals = {
      {1, 1.20}, {2, 2.25}, {3, 3.15}, /* seq 4 lost */ {5, 5.22},
      {6, 6.18}};
  const double horizon = 30.0;
  const auto reference = nfd_e_reference(params_w8(), arrivals, horizon);

  FleetMonitor monitor(fleet_options(1, 1));
  std::vector<Heartbeat> batch;
  for (const auto& [seq, at] : arrivals) batch.push_back(hb(0, seq, at));
  monitor.ingest(batch);
  monitor.close(TimePoint(horizon));
  const auto stream = monitor.drain_transitions();

  ASSERT_EQ(stream.size(), reference.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].process, 0u);
    EXPECT_EQ(stream[i].to, reference[i].to) << "transition " << i;
    EXPECT_DOUBLE_EQ(stream[i].at.seconds(), reference[i].at.seconds())
        << "transition " << i;
  }
}

TEST(FleetMonitor, AdvanceGranularityDoesNotQuantizeTimestamps) {
  // Rule 1 of the determinism contract: the coarse wheel decides *when the
  // engine notices*, never the emitted timestamp.  Drive the expiry with
  // deliberately coarse advance() steps and compare against close().
  FleetOptions coarse = fleet_options(1, 1);
  coarse.wheel_resolution = seconds(0.7);  // nothing divides nicely
  FleetMonitor monitor(coarse);
  monitor.ingest(std::vector<Heartbeat>{hb(0, 1, 1.2), hb(0, 2, 2.2)});
  for (double t = 3.0; t < 12.0; t += 1.3) monitor.advance(TimePoint(t));
  monitor.close(TimePoint(30.0));
  const auto stream = monitor.drain_transitions();
  // Trust at 1.2; suspect at EA_3 + alpha = 3.2 + 0.5 exactly.
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].to, Verdict::kTrust);
  EXPECT_DOUBLE_EQ(stream[0].at.seconds(), 1.2);
  EXPECT_EQ(stream[1].to, Verdict::kSuspect);
  EXPECT_DOUBLE_EQ(stream[1].at.seconds(), 3.7);
}

TEST(FleetMonitor, CatchUpFiresOverdueSuspicionBeforeTheHeartbeat) {
  // Rule 2: a heartbeat arriving after its process's freshness point must
  // see the suspicion emitted first (at the exact freshness point), then
  // the re-trust at the arrival.  The arrival 3.72 sits *inside* the wheel
  // tick containing the 3.7 deadline (default resolution eta/8 = 0.125, so
  // ingest only advances the wheel to tick 29 < deadline tick 30): only
  // the per-process catch-up check can emit the suspicion here.
  FleetMonitor monitor(fleet_options(1, 1));
  monitor.ingest(std::vector<Heartbeat>{hb(0, 1, 1.2), hb(0, 2, 2.2)});
  // Freshness point after m_2: EA_3 + alpha = 3.7.  Deliver m_3 late.
  monitor.ingest(std::vector<Heartbeat>{hb(0, 3, 3.72)});
  monitor.close(TimePoint(30.0));
  const auto stream = monitor.drain_transitions();
  ASSERT_EQ(stream.size(), 4u);
  EXPECT_EQ(stream[0].to, Verdict::kTrust);
  EXPECT_EQ(stream[1].to, Verdict::kSuspect);
  EXPECT_DOUBLE_EQ(stream[1].at.seconds(), 3.7);
  EXPECT_EQ(stream[2].to, Verdict::kTrust);
  EXPECT_DOUBLE_EQ(stream[2].at.seconds(), 3.72);
  EXPECT_EQ(stream[3].to, Verdict::kSuspect);  // end-of-stream expiry
}

TEST(FleetMonitor, LateHeartbeatPastItsOwnFreshnessPointStaysSuspect) {
  // NFD-E semantics (mirrored from NfdU::on_heartbeat): a heartbeat so
  // late that the freshness point it computes for the *next* message has
  // already passed does not re-trust.  m_3 at 6.0 yields EA_4 + alpha
  // ~= 5.63 < 6.0, so the process stays suspect.
  FleetMonitor monitor(fleet_options(1, 1));
  monitor.ingest(std::vector<Heartbeat>{hb(0, 1, 1.2), hb(0, 2, 2.2)});
  monitor.ingest(std::vector<Heartbeat>{hb(0, 3, 6.0)});
  monitor.close(TimePoint(30.0));
  const auto stream = monitor.drain_transitions();
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].to, Verdict::kTrust);
  EXPECT_EQ(stream[1].to, Verdict::kSuspect);
  EXPECT_DOUBLE_EQ(stream[1].at.seconds(), 3.7);
  EXPECT_EQ(monitor.verdict(0), Verdict::kSuspect);
}

TEST(FleetMonitor, IncarnationFilterDropsStaleAndRebasesOnBump) {
  FleetMonitor monitor(fleet_options(2, 1));
  monitor.ingest(std::vector<Heartbeat>{
      hb(0, 1, 1.2, 0), hb(1, 1, 1.3, 0), hb(0, 2, 2.2, 0)});
  EXPECT_EQ(monitor.incarnation(0), 0u);
  EXPECT_EQ(monitor.window_count(0), 2u);

  // A crashed-and-recovered process comes back with incarnation 1 and its
  // sequence numbering restarted: the engine rebases its epoch instead of
  // treating seq 1 as a duplicate.
  monitor.ingest(std::vector<Heartbeat>{hb(0, 1, 8.0, 1)});
  EXPECT_EQ(monitor.incarnation(0), 1u);
  EXPECT_EQ(monitor.window_count(0), 1u);  // old window discarded
  EXPECT_EQ(monitor.verdict(0), Verdict::kTrust);

  // Anything still carrying the old incarnation is dropped on the floor.
  monitor.ingest(std::vector<Heartbeat>{hb(0, 7, 8.5, 0)});
  EXPECT_EQ(monitor.dropped_stale(), 1u);
  EXPECT_EQ(monitor.window_count(0), 1u);
  EXPECT_EQ(monitor.heartbeats(), 5u);
}

TEST(FleetMonitor, DuplicateSequenceNumbersAreDropped) {
  FleetMonitor monitor(fleet_options(1, 1));
  monitor.ingest(std::vector<Heartbeat>{
      hb(0, 1, 1.2), hb(0, 2, 2.2), hb(0, 2, 2.4), hb(0, 1, 2.5)});
  EXPECT_EQ(monitor.dropped_duplicate(), 2u);
  EXPECT_EQ(monitor.window_count(0), 2u);
}

TEST(FleetMonitor, IngestRejectsContractViolations) {
  FleetMonitor monitor(fleet_options(2, 1));
  EXPECT_THROW(monitor.ingest(std::vector<Heartbeat>{hb(2, 1, 1.0)}),
               std::invalid_argument);  // process out of range
  EXPECT_THROW(monitor.ingest(std::vector<Heartbeat>{hb(0, 0, 1.0)}),
               std::invalid_argument);  // sequence numbers start at 1
  monitor.ingest(std::vector<Heartbeat>{hb(0, 1, 2.0)});
  EXPECT_THROW(
      monitor.ingest(std::vector<Heartbeat>{hb(1, 1, 1.0)}),
      std::invalid_argument);  // arrival precedes the high-water mark
}

TEST(FleetMonitor, RejectsInvalidOptions) {
  EXPECT_THROW(FleetMonitor(fleet_options(0, 1)), std::invalid_argument);
  EXPECT_THROW(FleetMonitor(fleet_options(4, 0)), std::invalid_argument);
  EXPECT_THROW(FleetMonitor(fleet_options(4, 5)), std::invalid_argument);
  EXPECT_THROW(
      FleetMonitor(fleet_options(4, 2, core::NfdEParams{seconds(0.0),
                                                        seconds(0.5), 8})),
      std::invalid_argument);
}

TEST(FleetMonitor, BalancedPartitionNeverCreatesAnEmptyShard) {
  // 10 processes over 4 shards: 3/3/2/2, and every id maps to the shard
  // that owns its row.
  FleetMonitor monitor(fleet_options(10, 4));
  EXPECT_EQ(monitor.shard_count(), 4u);
  std::vector<Heartbeat> batch;
  for (ProcessIndex p = 0; p < 10; ++p) {
    batch.push_back(hb(p, 1, 1.0 + 0.01 * static_cast<double>(p)));
  }
  monitor.ingest(batch);
  for (ProcessIndex p = 0; p < 10; ++p) {
    EXPECT_EQ(monitor.verdict(p), Verdict::kTrust) << "process " << p;
  }
  EXPECT_EQ(monitor.heartbeats(), 10u);
}

TEST(FleetMonitor, MemoryStaysWithinBudget) {
  core::NfdEParams p = params_w8();
  p.window = 16;
  FleetMonitor monitor(fleet_options(10'000, 16, p));
  const double per_process =
      static_cast<double>(monitor.memory_bytes()) / 10'000.0;
  // ~70 fixed + 8 * window = ~200; leave headroom for vector rounding.
  EXPECT_LT(per_process, 400.0);
  EXPECT_GT(per_process, 8.0 * 16);  // the rings alone are 128
}

// ---- determinism suite --------------------------------------------------

WorkloadOptions small_workload() {
  WorkloadOptions w;
  w.processes = 500;
  w.seed = 99;
  w.slots = 12;
  w.loss_prob = 0.05;
  return w;
}

TEST(FleetDeterminism, WorkloadGenerationIsAPureFunction) {
  const auto a = generate_workload(small_workload());
  const auto b = generate_workload(small_workload());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].process, b[i].process);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
  }
}

TEST(FleetDeterminism, ShardCountsProduceByteIdenticalResults) {
  // The tentpole acceptance criterion: runs at shard counts {1, 4, 16}
  // must agree on the drained transition stream (CRC over the canonical
  // text form) and on the entire deterministic payload, byte for byte.
  std::optional<std::string> reference_json;
  std::optional<std::uint32_t> reference_crc;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    const FleetRunResult r = run_fleet(small_workload(), shards, params_w8());
    EXPECT_GT(r.transitions, 0u);
    std::ostringstream payload;
    write_fleet_json(payload, {r}, /*include_measurements=*/false,
                     /*fast_mode=*/false);
    if (!reference_json) {
      reference_json = payload.str();
      reference_crc = r.stream_crc32;
    } else {
      EXPECT_EQ(payload.str(), *reference_json) << "shards=" << shards;
      EXPECT_EQ(r.stream_crc32, *reference_crc) << "shards=" << shards;
    }
  }
}

TEST(FleetDeterminism, ShardCountsProduceIdenticalTransitionStreams) {
  // Stronger than the CRC: the full drained vectors compare equal.
  const auto workload = generate_workload(small_workload());
  const TimePoint horizon = workload_horizon(small_workload(), params_w8());
  std::optional<std::vector<Transition>> reference;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    FleetMonitor monitor(fleet_options(500, shards));
    monitor.ingest(workload);
    monitor.close(horizon);
    auto stream = monitor.drain_transitions();
    if (!reference) {
      reference = std::move(stream);
    } else {
      EXPECT_EQ(stream, *reference) << "shards=" << shards;
    }
  }
}

TEST(FleetDeterminism, WheelResolutionDoesNotChangeTheStream) {
  const auto workload = generate_workload(small_workload());
  const TimePoint horizon = workload_horizon(small_workload(), params_w8());
  std::optional<std::vector<Transition>> reference;
  for (const double res : {0.125, 0.05, 0.7}) {
    FleetOptions fo = fleet_options(500, 4);
    fo.wheel_resolution = seconds(res);
    FleetMonitor monitor(fo);
    monitor.ingest(workload);
    monitor.close(horizon);
    auto stream = monitor.drain_transitions();
    if (!reference) {
      reference = std::move(stream);
    } else {
      EXPECT_EQ(stream, *reference) << "resolution=" << res;
    }
  }
}

// ---- fault-plan integration --------------------------------------------

TEST(FleetFaults, CrashSuspectsAndRecoveryRetrustsWithNewIncarnation) {
  WorkloadOptions w;
  w.processes = 4;
  w.seed = 7;
  w.slots = 20;
  w.loss_prob = 0.0;
  fault::FaultPlan plan;
  plan.crash_process(2, TimePoint(6.0)).recover_process(2, TimePoint(12.0));

  const auto workload = generate_workload(w, &plan);
  // Sends inside the outage are suppressed...
  for (const Heartbeat& h : workload) {
    if (h.process == 2) {
      const double sigma = h.arrival.seconds();
      EXPECT_FALSE(sigma > 6.0 && sigma < 12.0)
          << "heartbeat sent during downtime at " << sigma;
    }
  }

  FleetMonitor monitor(fleet_options(4, 2, params_w8()));
  monitor.ingest(workload);
  monitor.close(workload_horizon(w, params_w8()));
  const auto stream = monitor.drain_transitions();

  // ...so process 2 is suspected during the outage and re-trusted after
  // recovery, under its bumped incarnation.
  std::vector<Transition> p2;
  for (const Transition& t : stream) {
    if (t.process == 2) p2.push_back(t);
  }
  ASSERT_GE(p2.size(), 3u);
  EXPECT_EQ(p2[0].to, Verdict::kTrust);
  EXPECT_EQ(p2[1].to, Verdict::kSuspect);
  EXPECT_GT(p2[1].at.seconds(), 6.0);
  EXPECT_LT(p2[1].at.seconds(), 12.0);
  EXPECT_EQ(p2[2].to, Verdict::kTrust);
  EXPECT_GT(p2[2].at.seconds(), 12.0);
  EXPECT_EQ(monitor.incarnation(2), 1u);
  // The other processes never flapped: trust at start, suspect at stream
  // end, nothing in between.
  for (const ProcessIndex p : {0u, 1u, 3u}) {
    std::size_t count = 0;
    for (const Transition& t : stream) count += t.process == p ? 1 : 0;
    EXPECT_EQ(count, 2u) << "process " << p;
    EXPECT_EQ(monitor.incarnation(p), 0u);
  }
}

// ---- supervisor persistence --------------------------------------------

TEST(FleetPersist, ExportSummaryReflectsTheTable) {
  FleetMonitor monitor(fleet_options(10, 4));
  std::vector<Heartbeat> batch;
  for (ProcessIndex p = 0; p < 10; ++p) {
    batch.push_back(hb(p, 3, 1.0 + 0.01 * static_cast<double>(p), p == 0));
  }
  monitor.ingest(batch);
  const persist::FleetState state = monitor.export_summary();
  EXPECT_EQ(state.processes, 10u);
  ASSERT_EQ(state.shards.size(), 4u);
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < state.shards.size(); ++i) {
    EXPECT_EQ(state.shards[i].shard, i);
    covered += state.shards[i].processes;
    EXPECT_EQ(state.shards[i].max_seq, 3u);
  }
  EXPECT_EQ(covered, 10u);
  EXPECT_EQ(state.shards[0].max_incarnation, 1u);  // process 0 bumped
  EXPECT_EQ(state.shards[3].max_incarnation, 0u);
}

TEST(FleetPersist, WarmRestoreResetsToAllSuspectSoftState) {
  FleetMonitor monitor(fleet_options(6, 2));
  std::vector<Heartbeat> batch;
  for (ProcessIndex p = 0; p < 6; ++p) {
    batch.push_back(hb(p, 1, 1.0 + 0.01 * static_cast<double>(p)));
  }
  monitor.ingest(batch);
  (void)monitor.drain_transitions();
  EXPECT_EQ(monitor.verdict(0), Verdict::kTrust);

  const persist::FleetState state = monitor.export_summary();
  monitor.restore_summary(state, /*warm=*/true);
  for (ProcessIndex p = 0; p < 6; ++p) {
    EXPECT_EQ(monitor.verdict(p), Verdict::kSuspect);
    EXPECT_EQ(monitor.window_count(p), 0u);
  }
  // Live processes re-trust on their first post-restore heartbeat.
  monitor.ingest(std::vector<Heartbeat>{hb(0, 2, 2.0)});
  EXPECT_EQ(monitor.verdict(0), Verdict::kTrust);
}

TEST(FleetPersist, WarmRestoreRejectsAMismatchedShape) {
  FleetMonitor monitor(fleet_options(6, 2));
  persist::FleetState wrong_processes = monitor.export_summary();
  wrong_processes.processes = 7;
  EXPECT_THROW(monitor.restore_summary(wrong_processes, true),
               std::invalid_argument);
  persist::FleetState wrong_shards = monitor.export_summary();
  wrong_shards.shards.pop_back();
  EXPECT_THROW(monitor.restore_summary(wrong_shards, true),
               std::invalid_argument);
  EXPECT_THROW(monitor.restore_summary(std::nullopt, true),
               std::invalid_argument);
}

TEST(FleetPersist, ColdRestoreNeedsNoState) {
  FleetMonitor monitor(fleet_options(3, 1));
  monitor.ingest(std::vector<Heartbeat>{hb(0, 1, 1.0)});
  monitor.restore_summary(std::nullopt, /*warm=*/false);
  EXPECT_EQ(monitor.verdict(0), Verdict::kSuspect);
  EXPECT_EQ(monitor.window_count(0), 0u);
}

// ---- report emitter -----------------------------------------------------

TEST(FleetReport, JsonSplitsPayloadFromMeasurements) {
  FleetRunResult r;
  r.processes = 500;
  r.heartbeats = 6000;
  r.ingested = 5990;
  r.dropped_stale = 4;
  r.dropped_pre_epoch = 3;
  r.dropped_duplicate = 3;
  r.transitions = 1100;
  r.suspects = 550;
  r.trusts = 550;
  r.stream_crc32 = 0x00c0ffee;
  r.shards = 4;
  r.heartbeats_per_sec = 1.5e6;
  r.bytes_per_process = 250.0;

  std::ostringstream payload;
  write_fleet_json(payload, {r}, /*include_measurements=*/false, false);
  EXPECT_NE(payload.str().find("\"stream_crc32\": \"00c0ffee\""),
            std::string::npos);
  EXPECT_EQ(payload.str().find("heartbeats_per_sec"), std::string::npos);
  EXPECT_EQ(payload.str().find("shards"), std::string::npos);

  std::ostringstream full;
  write_fleet_json(full, {r}, /*include_measurements=*/true, false);
  EXPECT_NE(full.str().find("heartbeats_per_sec"), std::string::npos);
  EXPECT_NE(full.str().find("\"shards\": 4"), std::string::npos);
  EXPECT_NE(full.str().find("\"fast_mode\": false"), std::string::npos);
}

// ---- global-id offset (realtime front-end partition) --------------------

TEST(FleetMonitor, FirstProcessOffsetKeepsGlobalIds) {
  // The realtime engine runs one single-shard monitor per partition slice;
  // first_process makes that monitor speak global process ids directly.
  FleetOptions fo = fleet_options(3, 1);
  fo.first_process = 100;
  FleetMonitor monitor(fo);

  monitor.ingest(std::vector<Heartbeat>{hb(100, 1, 1.0), hb(102, 1, 1.5)});
  EXPECT_EQ(monitor.verdict(100), Verdict::kTrust);
  EXPECT_EQ(monitor.verdict(101), Verdict::kSuspect);  // never heard from
  EXPECT_EQ(monitor.verdict(102), Verdict::kTrust);
  // Ids outside [first_process, first_process + processes) are rejected,
  // including the pre-offset range.
  EXPECT_THROW((void)monitor.verdict(99), std::invalid_argument);
  EXPECT_THROW((void)monitor.verdict(103), std::invalid_argument);
  EXPECT_THROW(monitor.ingest(std::vector<Heartbeat>{hb(0, 1, 2.0)}),
               std::invalid_argument);

  const auto stream = monitor.drain_transitions();
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].process, 100u);  // transitions carry global ids
  EXPECT_EQ(stream[1].process, 102u);

  // Overflow guard: first_process + processes must fit ProcessIndex.
  FleetOptions overflow = fleet_options(2, 1);
  overflow.first_process = 0xffffffffu;
  EXPECT_THROW(overflow.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::fleet
