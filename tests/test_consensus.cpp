// Tests for the Chandra-Toueg consensus substrate: validity, agreement and
// termination under crashes, false suspicions, and (for safety only)
// message loss.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/ct.hpp"
#include "dist/exponential.hpp"
#include "group/group.hpp"

namespace chenfd::consensus {
namespace {

struct Cluster {
  group::Group grp;
  Transport transport;
  std::vector<std::unique_ptr<CtProcess>> procs;
  std::vector<std::int64_t> proposals;

  Cluster(std::size_t n, std::vector<std::int64_t> props,
          std::uint64_t seed, double msg_loss = 0.0,
          core::NfdSParams fd = core::NfdSParams{seconds(1.0), seconds(1.0)},
          CtProcess::Options opts = {})
      : grp(make_group(n, seed, fd)),
        transport(grp.simulator(), n,
                  std::make_unique<dist::Exponential>(0.02), msg_loss,
                  seed ^ 0xABCDEF),
        proposals(std::move(props)) {
    for (group::ProcessId i = 0; i < n; ++i) {
      procs.push_back(std::make_unique<CtProcess>(
          grp.simulator(), transport, grp, i, n, proposals[i], opts));
    }
  }

  static group::Group::Config make_group(std::size_t n, std::uint64_t seed,
                                         core::NfdSParams fd) {
    group::Group::Config cfg;
    cfg.size = n;
    cfg.delay = std::make_unique<dist::Exponential>(0.02);
    cfg.p_loss = 0.01;
    cfg.detector = fd;
    cfg.seed = seed;
    return cfg;
  }

  /// Lets the failure detectors reach steady state, then starts consensus.
  /// The optional crash may be scheduled before or after the warm-up.
  void run(double warmup = 10.0, double horizon = 500.0,
           std::optional<std::pair<group::ProcessId, double>> crash =
               std::nullopt) {
    grp.start();
    if (crash) {
      const auto [victim, when] = *crash;
      grp.simulator().at(TimePoint(when), [this, victim = victim] {
        grp.crash_at(victim, grp.simulator().now());
        transport.crash(victim);
        procs[victim]->crash();
      });
    }
    grp.simulator().run_until(TimePoint(warmup));
    for (auto& p : procs) p->start();
    grp.simulator().run_until(TimePoint(horizon));
  }

  [[nodiscard]] std::set<std::int64_t> decisions() const {
    std::set<std::int64_t> out;
    for (const auto& p : procs) {
      if (p->decided()) out.insert(p->decision());
    }
    return out;
  }

  [[nodiscard]] bool all_correct_decided() const {
    for (group::ProcessId i = 0; i < procs.size(); ++i) {
      if (grp.crashed(i)) continue;
      if (!procs[i]->decided()) return false;
    }
    return true;
  }

  ~Cluster() { grp.stop(); }
};

TEST(Consensus, FailureFreeDecidesQuicklyInRoundOne) {
  Cluster c(3, {10, 20, 30}, 501);
  c.run();
  EXPECT_TRUE(c.all_correct_decided());
  ASSERT_EQ(c.decisions().size(), 1u);
  // With steady detectors and no crash, round 1 decides; the value is one
  // of the timestamp-0 estimates the coordinator gathered (CT leaves the
  // tie-break free).
  const auto d = *c.decisions().begin();
  EXPECT_TRUE(d == 10 || d == 20 || d == 30);
  for (const auto& p : c.procs) {
    EXPECT_EQ(p->decided_round(), 1u);
  }
}

TEST(Consensus, ValidityDecisionIsSomeProposal) {
  for (std::uint64_t seed : {601u, 602u, 603u, 604u}) {
    Cluster c(5, {1, 2, 3, 4, 5}, seed);
    c.run();
    ASSERT_TRUE(c.all_correct_decided()) << "seed " << seed;
    for (const auto d : c.decisions()) {
      EXPECT_GE(d, 1);
      EXPECT_LE(d, 5);
    }
  }
}

TEST(Consensus, AgreementAcrossManySeeds) {
  for (std::uint64_t seed = 700; seed < 720; ++seed) {
    Cluster c(5, {11, 22, 33, 44, 55}, seed);
    c.run();
    EXPECT_LE(c.decisions().size(), 1u) << "seed " << seed;
    EXPECT_TRUE(c.all_correct_decided()) << "seed " << seed;
  }
}

TEST(Consensus, SurvivesCoordinatorCrashBeforeStart) {
  // Process 0 (round-1 coordinator) is crashed before consensus begins;
  // the failure detectors are already steady, so everyone nacks round 1
  // and round 2's coordinator decides.
  Cluster c(5, {10, 20, 30, 40, 50}, 801);
  c.run(10.0, 500.0, std::make_pair(group::ProcessId{0}, 5.0));
  EXPECT_TRUE(c.all_correct_decided());
  ASSERT_EQ(c.decisions().size(), 1u);
  EXPECT_NE(*c.decisions().begin(), 10);  // dead coordinator's value skipped
  for (group::ProcessId i = 1; i < 5; ++i) {
    EXPECT_GE(c.procs[i]->decided_round(), 2u);
  }
}

TEST(Consensus, LeaderHintSkipsCrashedRotationCoordinator) {
  // Same crash as above, but an election layer supplies a stable hint for
  // process 1: round 1 is coordinated by the hinted leader directly, so no
  // round is burned NACKing the dead rotation coordinator and everyone
  // decides in round 1.
  CtProcess::Options opts;
  opts.leader_hint = [] { return std::optional<group::ProcessId>{1}; };
  Cluster c(5, {10, 20, 30, 40, 50}, 801, 0.0,
            core::NfdSParams{seconds(1.0), seconds(1.0)}, opts);
  c.run(10.0, 500.0, std::make_pair(group::ProcessId{0}, 5.0));
  EXPECT_TRUE(c.all_correct_decided());
  ASSERT_EQ(c.decisions().size(), 1u);
  EXPECT_NE(*c.decisions().begin(), 10);  // dead process's value skipped
  for (group::ProcessId i = 1; i < 5; ++i) {
    EXPECT_EQ(c.procs[i]->decided_round(), 1u);
  }
}

TEST(Consensus, EmptyLeaderHintFallsBackToRotation) {
  // An election that has not converged yet returns nullopt; the protocol
  // must degrade to the plain rotation, not stall.
  CtProcess::Options opts;
  opts.leader_hint = [] { return std::optional<group::ProcessId>{}; };
  Cluster c(5, {10, 20, 30, 40, 50}, 806, 0.0,
            core::NfdSParams{seconds(1.0), seconds(1.0)}, opts);
  c.run();
  EXPECT_TRUE(c.all_correct_decided());
  EXPECT_EQ(c.decisions().size(), 1u);
  for (const auto& p : c.procs) EXPECT_EQ(p->decided_round(), 1u);
}

TEST(Consensus, StaleLeaderHintCostsLivenessNeverSafety) {
  // A hint stuck on the crashed process livelocks the rounds (every round
  // NACKs the same dead coordinator) — that is the election layer's bug to
  // fix, but consensus safety must hold: nobody decides a wrong value and
  // no two processes disagree.
  CtProcess::Options opts;
  opts.leader_hint = [] { return std::optional<group::ProcessId>{0}; };
  opts.max_rounds = 50;
  Cluster c(5, {10, 20, 30, 40, 50}, 807, 0.0,
            core::NfdSParams{seconds(1.0), seconds(1.0)}, opts);
  c.run(10.0, 500.0, std::make_pair(group::ProcessId{0}, 5.0));
  EXPECT_LE(c.decisions().size(), 1u);
  for (const auto d : c.decisions()) {
    EXPECT_TRUE(d == 20 || d == 30 || d == 40 || d == 50);
  }
}

TEST(Consensus, SurvivesCoordinatorCrashMidProtocol) {
  // The coordinator dies shortly after consensus starts; detection takes
  // up to delta + eta = 2 s, after which round 2 decides.
  Cluster c(5, {10, 20, 30, 40, 50}, 802);
  c.run(10.0, 500.0, std::make_pair(group::ProcessId{0}, 10.01));
  EXPECT_TRUE(c.all_correct_decided());
  EXPECT_LE(c.decisions().size(), 1u);
}

TEST(Consensus, SurvivesMinorityCrashes) {
  // n = 5 tolerates 2 crashes.
  Cluster c(5, {10, 20, 30, 40, 50}, 803);
  c.grp.start();
  c.grp.simulator().run_until(TimePoint(10.0));
  for (auto& p : c.procs) p->start();
  c.grp.simulator().at(TimePoint(10.005), [&c] {
    for (group::ProcessId v : {0u, 1u}) {
      c.grp.crash_at(v, c.grp.simulator().now());
      c.transport.crash(v);
      c.procs[v]->crash();
    }
  });
  c.grp.simulator().run_until(TimePoint(500.0));
  EXPECT_TRUE(c.all_correct_decided());
  EXPECT_LE(c.decisions().size(), 1u);
}

TEST(Consensus, AggressiveDetectorCausesNacksButNeverDisagreement) {
  // delta = 0.05 with E(D) = 0.02 exponential delays: the detector makes
  // mistakes constantly, so rounds fail with NACKs — but agreement and
  // validity must survive arbitrary unreliability (that is the whole point
  // of the Chandra-Toueg design).
  std::uint64_t total_nacks = 0;
  for (std::uint64_t seed = 900; seed < 910; ++seed) {
    Cluster c(5, {10, 20, 30, 40, 50}, seed, 0.0,
              core::NfdSParams{seconds(1.0), seconds(0.05)});
    c.run(10.0, 2000.0);
    EXPECT_LE(c.decisions().size(), 1u) << "seed " << seed;
    if (!c.decisions().empty()) {
      const auto d = *c.decisions().begin();
      EXPECT_TRUE(d == 10 || d == 20 || d == 30 || d == 40 || d == 50);
    }
    for (const auto& p : c.procs) total_nacks += p->nacks_sent();
  }
  EXPECT_GT(total_nacks, 0u);  // the aggressive detector did interfere
}

TEST(Consensus, MessageLossBreaksLivenessNotSafety) {
  // 30% message loss on the consensus transport: decisions may never
  // happen (CT needs quasi-reliable channels), but any decisions made must
  // agree and be valid.
  CtProcess::Options opts;
  opts.max_rounds = 200;  // keep lossy executions finite
  for (std::uint64_t seed = 1000; seed < 1010; ++seed) {
    Cluster c(5, {10, 20, 30, 40, 50}, seed, 0.3,
              core::NfdSParams{seconds(1.0), seconds(1.0)}, opts);
    c.run(10.0, 1000.0);
    EXPECT_LE(c.decisions().size(), 1u) << "seed " << seed;
  }
}

TEST(Consensus, DecisionLatencyReflectsDetectionTime) {
  // Crash-free latency is a few message delays; with a crashed round-1
  // coordinator the latency is dominated by the detection time (up to
  // delta + eta) — the paper's core argument for QoS-aware detectors.
  Cluster fast(5, {1, 2, 3, 4, 5}, 1101);
  fast.run(10.0, 500.0);
  ASSERT_TRUE(fast.all_correct_decided());
  double fast_latency = 0.0;
  for (const auto& p : fast.procs) {
    fast_latency =
        std::max(fast_latency, p->decision_time().seconds() - 10.0);
  }

  Cluster crashed(5, {1, 2, 3, 4, 5}, 1102);
  crashed.run(10.0, 500.0, std::make_pair(group::ProcessId{0}, 10.001));
  ASSERT_TRUE(crashed.all_correct_decided());
  double crash_latency = 0.0;
  for (group::ProcessId i = 1; i < 5; ++i) {
    crash_latency = std::max(
        crash_latency, crashed.procs[i]->decision_time().seconds() - 10.0);
  }
  EXPECT_LT(fast_latency, 1.0);
  EXPECT_GT(crash_latency, 1.0);  // waited out the detection
  EXPECT_LT(crash_latency, 2.0 + 1.0 + 1.0);  // ~ T_D bound + protocol time
}

TEST(Consensus, RejectsBadConstruction) {
  group::Group::Config gc;
  gc.size = 3;
  gc.delay = std::make_unique<dist::Exponential>(0.02);
  group::Group g(std::move(gc));
  Transport t(g.simulator(), 3, std::make_unique<dist::Exponential>(0.02),
              0.0, 1);
  EXPECT_THROW(CtProcess(g.simulator(), t, g, 7, 3, 0),
               std::invalid_argument);
  CtProcess::Options bad;
  bad.suspicion_poll = Duration::zero();
  EXPECT_THROW(CtProcess(g.simulator(), t, g, 0, 3, 0, bad),
               std::invalid_argument);
}

TEST(Transport, DropsAtConfiguredRate) {
  sim::Simulator sim;
  Transport t(sim, 2, std::make_unique<dist::Exponential>(0.02), 0.25, 3);
  int received = 0;
  t.register_handler(1, [&](const Message&, TimePoint) { ++received; });
  Message m;
  m.from = 0;
  for (int i = 0; i < 20000; ++i) t.send(1, m);
  sim.run();
  EXPECT_NEAR(received / 20000.0, 0.75, 0.02);
  EXPECT_EQ(t.messages_sent(), 20000u);
}

TEST(Transport, CrashedProcessNeitherSendsNorReceives) {
  sim::Simulator sim;
  Transport t(sim, 2, std::make_unique<dist::Exponential>(0.02), 0.0, 4);
  int received = 0;
  t.register_handler(1, [&](const Message&, TimePoint) { ++received; });
  Message m;
  m.from = 0;
  t.send(1, m);
  t.crash(0);
  t.send(1, m);  // ignored: sender crashed
  sim.run();
  EXPECT_EQ(received, 1);
  t.crash(1);
  t.register_handler(0, [](const Message&, TimePoint) {});
  Message back;
  back.from = 0;  // 0 is crashed; nothing flows
  t.send(1, back);
  sim.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace chenfd::consensus
