// Unit tests for the qos::Figures / qos::Requirements value types and the
// Testbed facade.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/nfd_s.hpp"
#include "core/testbed.hpp"
#include "dist/constant.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/metrics.hpp"

namespace chenfd {
namespace {

TEST(Requirements, Validity) {
  EXPECT_TRUE((qos::Requirements{seconds(1.0), seconds(1.0), seconds(1.0)}
                   .valid()));
  EXPECT_FALSE((qos::Requirements{seconds(0.0), seconds(1.0), seconds(1.0)}
                    .valid()));
  EXPECT_FALSE((qos::Requirements{seconds(1.0), seconds(-1.0), seconds(1.0)}
                    .valid()));
  EXPECT_FALSE((qos::Requirements{seconds(1.0), seconds(1.0), seconds(0.0)}
                    .valid()));
}

TEST(Requirements, StreamFormat) {
  std::ostringstream os;
  os << qos::Requirements{seconds(30.0), seconds(100.0), seconds(60.0)};
  EXPECT_EQ(os.str(), "{T_D^U=30s, T_MR^L=100s, T_M^U=60s}");
}

TEST(Figures, DerivedMetrics) {
  qos::Figures f;
  f.detection_time_bound = seconds(2.0);
  f.mistake_recurrence_mean = seconds(16.0);
  f.mistake_duration_mean = seconds(4.0);
  EXPECT_EQ(f.good_period_mean(), seconds(12.0));
  EXPECT_DOUBLE_EQ(f.mistake_rate(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.query_accuracy(), 0.75);
}

TEST(Figures, SatisfiesIsComponentwise) {
  qos::Figures f;
  f.detection_time_bound = seconds(2.0);
  f.mistake_recurrence_mean = seconds(100.0);
  f.mistake_duration_mean = seconds(1.0);
  EXPECT_TRUE(
      f.satisfies(qos::Requirements{seconds(2.0), seconds(100.0),
                                    seconds(1.0)}));  // boundaries inclusive
  EXPECT_FALSE(f.satisfies(
      qos::Requirements{seconds(1.9), seconds(100.0), seconds(1.0)}));
  EXPECT_FALSE(f.satisfies(
      qos::Requirements{seconds(2.0), seconds(101.0), seconds(1.0)}));
  EXPECT_FALSE(f.satisfies(
      qos::Requirements{seconds(2.0), seconds(100.0), seconds(0.9)}));
}

TEST(Figures, InfiniteRecurrenceSatisfiesEverything) {
  qos::Figures f;
  f.detection_time_bound = seconds(1.0);
  f.mistake_recurrence_mean = Duration::infinity();
  f.mistake_duration_mean = Duration::zero();
  EXPECT_TRUE(f.satisfies(
      qos::Requirements{seconds(10.0), days(1e6), seconds(0.001)}));
}

TEST(Testbed, RequiresDetectorBeforeStart) {
  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Constant>(0.01);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.0);
  core::Testbed tb(std::move(cfg));
  EXPECT_THROW(tb.start(), std::invalid_argument);
}

TEST(Testbed, BroadcastsToAllAttachedDetectors) {
  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Constant>(0.01);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.0);
  cfg.eta = seconds(1.0);
  core::Testbed tb(std::move(cfg));
  core::NfdS a(tb.simulator(), core::NfdSParams{seconds(1.0), seconds(1.0)});
  core::NfdS b(tb.simulator(), core::NfdSParams{seconds(1.0), seconds(2.0)});
  tb.attach(a);
  tb.attach(b);
  tb.start();
  tb.simulator().run_until(TimePoint(10.0));
  EXPECT_EQ(a.max_seq(), b.max_seq());
  EXPECT_EQ(a.max_seq(), 9u);  // m_9 sent at 9, delivered 9.01
  a.stop();
  b.stop();
}

TEST(Testbed, SeedsMakeRunsReproducible) {
  const auto run = [](std::uint64_t seed) {
    core::Testbed::Config cfg;
    cfg.delay = std::make_unique<dist::Exponential>(0.05);
    cfg.loss = std::make_unique<net::BernoulliLoss>(0.1);
    cfg.eta = seconds(1.0);
    cfg.seed = seed;
    core::Testbed tb(std::move(cfg));
    core::NfdS d(tb.simulator(),
                 core::NfdSParams{seconds(1.0), seconds(1.0)});
    tb.attach(d);
    std::vector<Transition> log;
    d.add_listener([&log](const Transition& t) { log.push_back(t); });
    tb.start();
    tb.simulator().run_until(TimePoint(500.0));
    d.stop();
    return log;
  };
  const auto l1 = run(99);
  const auto l2 = run(99);
  const auto l3 = run(100);
  ASSERT_EQ(l1.size(), l2.size());
  for (std::size_t i = 0; i < l1.size(); ++i) EXPECT_EQ(l1[i], l2[i]);
  EXPECT_NE(l1.size(), l3.size());  // different seed, different run
}

TEST(Testbed, LinkStatisticsExposed) {
  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Constant>(0.01);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.5);
  cfg.eta = seconds(1.0);
  cfg.seed = 3;
  core::Testbed tb(std::move(cfg));
  core::NfdS d(tb.simulator(), core::NfdSParams{seconds(1.0), seconds(1.0)});
  tb.attach(d);
  tb.start();
  tb.simulator().run_until(TimePoint(1000.0));
  d.stop();
  EXPECT_EQ(tb.link().sent_count(), 1000u);
  EXPECT_NEAR(static_cast<double>(tb.link().dropped_count()) /
                  static_cast<double>(tb.link().sent_count()),
              0.5, 0.05);
}

}  // namespace
}  // namespace chenfd
