// Property tests of Theorem 1 on real detector output: the metric
// relations must hold for measured (not just analytic) data, across
// detector types and parameter settings.  This is the empirical
// counterpart of tests/test_relations.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "clock/clock.hpp"
#include "core/experiments.hpp"
#include "core/nfd_e.hpp"
#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "dist/exponential.hpp"
#include "qos/relations.hpp"

namespace chenfd::core {
namespace {

struct Case {
  std::string label;
  double p_loss;
  double delta;   // NFD-S freshness shift (or SFD timeout for kind=sfd)
  std::string kind;
};

class Theorem1Properties : public ::testing::TestWithParam<Case> {
 protected:
  qos::Recorder run() const {
    const Case& c = GetParam();
    dist::Exponential delay(0.02);
    NetworkModel model{c.p_loss, delay};
    AccuracyExperiment exp;
    exp.duration = seconds(200000.0);
    exp.seed = 4001 + std::hash<std::string>{}(c.label) % 1000;
    DetectorFactory factory;
    if (c.kind == "nfd_s") {
      factory = [&c](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<NfdS>(
            tb.simulator(), NfdSParams{Duration(1.0), Duration(c.delta)});
      };
    } else if (c.kind == "nfd_e") {
      factory = [&c](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<NfdE>(
            tb.simulator(), tb.q_clock(),
            NfdEParams{Duration(1.0), Duration(c.delta), 32});
      };
    } else {
      factory = [&c](Testbed& tb) -> std::unique_ptr<FailureDetector> {
        return std::make_unique<Sfd>(tb.simulator(), tb.q_clock(),
                                     SfdParams{Duration(c.delta)});
      };
    }
    return run_accuracy(factory, model, exp);
  }
};

TEST_P(Theorem1Properties, MistakeRateIsInverseRecurrence) {
  const auto rec = run();
  ASSERT_GT(rec.s_transitions(), 200u) << "need mistakes to measure";
  // lambda_M = 1/E(T_MR) (Thm 1.2), up to boundary effects of the window.
  EXPECT_NEAR(rec.mistake_rate() * rec.mistake_recurrence().mean(), 1.0,
              0.05);
}

TEST_P(Theorem1Properties, QueryAccuracyFromPrimaries) {
  const auto rec = run();
  ASSERT_GT(rec.s_transitions(), 200u);
  // P_A = E(T_G)/E(T_MR) = 1 - E(T_M)/E(T_MR).
  const double via_tg =
      rec.good_period().mean() / rec.mistake_recurrence().mean();
  EXPECT_NEAR(rec.query_accuracy(), via_tg, 0.02);
  const double via_tm =
      1.0 - rec.mistake_duration().mean() / rec.mistake_recurrence().mean();
  EXPECT_NEAR(rec.query_accuracy(), via_tm, 0.02);
}

TEST_P(Theorem1Properties, GoodPeriodIsRecurrenceMinusDuration) {
  const auto rec = run();
  ASSERT_GT(rec.s_transitions(), 200u);
  EXPECT_NEAR(
      rec.good_period().mean(),
      rec.mistake_recurrence().mean() - rec.mistake_duration().mean(),
      0.05 * rec.mistake_recurrence().mean());
}

TEST_P(Theorem1Properties, ForwardGoodPeriodFormulae) {
  const auto rec = run();
  const auto& tg = rec.good_period();
  ASSERT_GT(tg.count(), 200u);
  // 3c (via mean/variance), 3b with k=1 (via moments), and the direct
  // time-integral measurement must all agree.
  const double via_3c =
      qos::forward_good_period_mean(tg.mean(), tg.variance());
  const double via_3b = qos::forward_good_period_moment(tg, 1);
  const double direct = rec.forward_good_period_mean_direct();
  EXPECT_NEAR(via_3c, via_3b, 1e-6 * via_3c);
  EXPECT_NEAR(direct, via_3c, 0.05 * via_3c);
  // Waiting-time paradox: E(T_FG) >= E(T_G)/2 whenever T_G varies.
  EXPECT_GE(via_3c, tg.mean() / 2.0 - 1e-9);
}

TEST_P(Theorem1Properties, ForwardGoodPeriodCdfMatchesSampling) {
  // Independent check of 3a: sample random trusting instants from the
  // actual signal and compare the empirical distribution of the remaining
  // good period with the formula evaluated on the T_G samples.
  const auto rec = run();
  const auto& tg = rec.good_period();
  ASSERT_GT(tg.count(), 200u);
  // Length-biased sampling of good periods, uniform position within each.
  Rng rng(99);
  const auto& samples = tg.samples();
  double total = 0.0;
  for (double g : samples) total += g;
  std::vector<double> remaining;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.uniform01() * total;
    for (double g : samples) {
      if (u < g) {
        remaining.push_back(g - u);  // u uniform within this period
        break;
      }
      u -= g;
    }
  }
  ASSERT_GT(remaining.size(), 19000u);
  for (double q : {0.25, 0.5, 0.75}) {
    const double x = [&] {
      // x with formula-CDF ~= q, via bisection.
      double lo = 0.0;
      double hi = tg.max();
      for (int it = 0; it < 100; ++it) {
        const double mid = (lo + hi) / 2.0;
        (qos::forward_good_period_cdf(tg, mid) < q ? lo : hi) = mid;
      }
      return (lo + hi) / 2.0;
    }();
    const auto below = std::count_if(remaining.begin(), remaining.end(),
                                     [x](double r) { return r <= x; });
    EXPECT_NEAR(static_cast<double>(below) /
                    static_cast<double>(remaining.size()),
                q, 0.02)
        << "quantile " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DetectorsAndSettings, Theorem1Properties,
    ::testing::Values(Case{"nfds_light_loss", 0.02, 1.0, "nfd_s"},
                      Case{"nfds_heavy_loss", 0.10, 1.0, "nfd_s"},
                      Case{"nfds_large_delta", 0.05, 1.8, "nfd_s"},
                      Case{"nfde", 0.05, 1.0, "nfd_e"},
                      Case{"sfd", 0.05, 1.2, "sfd"}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace chenfd::core
