// Tests for the crash-tolerant monitor supervisor (DESIGN.md section 9):
// warm restart from a fresh snapshot, cold restart on missing / corrupt /
// stale snapshots, restart policy, the registry facade, and the
// suspect-while-down output contract.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "persist/store.hpp"
#include "qos/replay.hpp"
#include "service/supervisor.hpp"

namespace chenfd::service {
namespace {

using core::RelativeRequirements;

AdaptiveMonitor::Options monitor_options() {
  AdaptiveMonitor::Options o;
  o.requirements =
      RelativeRequirements{seconds(8.0), seconds(2000.0), seconds(4.0)};
  o.initial = core::NfdEParams{Duration(1.0), Duration(1.0), 32};
  o.reconfig_interval = seconds(50.0);
  return o;
}

struct Rig {
  core::Testbed tb;
  persist::MemorySnapshotStore store;
  MonitorSupervisor supervisor;
  std::vector<Transition> log;

  explicit Rig(MonitorSupervisor::Options opts, std::uint64_t seed = 6001,
               double p_loss = 0.01)
      : tb(make_config(p_loss, seed)),
        supervisor(tb.simulator(), tb.q_clock(), tb.sender(), store, opts) {
    supervisor.add_listener(
        [this](const Transition& t) { log.push_back(t); });
    tb.attach(supervisor);
    tb.start();
  }

  static core::Testbed::Config make_config(double p_loss,
                                           std::uint64_t seed) {
    core::Testbed::Config cfg;
    cfg.delay = std::make_unique<dist::Exponential>(0.02);
    cfg.loss = std::make_unique<net::BernoulliLoss>(p_loss);
    cfg.eta = seconds(1.0);
    cfg.seed = seed;
    return cfg;
  }

  void run_until(double t) { tb.simulator().run_until(TimePoint(t)); }
};

MonitorSupervisor::Options default_sup_options() {
  MonitorSupervisor::Options o;
  o.monitor = monitor_options();
  o.snapshot_interval = seconds(20.0);
  o.max_snapshot_age = seconds(300.0);
  return o;
}

TEST(MonitorSupervisor, TakesPeriodicSnapshots) {
  Rig rig(default_sup_options());
  rig.run_until(105.0);
  EXPECT_GE(rig.supervisor.snapshots_taken(), 5u);
  ASSERT_TRUE(rig.store.load().has_value());
  // The persisted bytes are a valid snapshot as stored, and the store
  // stamp is the supervisor's q-local save instant, not anything the
  // payload claims.
  EXPECT_NO_THROW((void)persist::from_string(rig.store.load()->bytes));
  EXPECT_GT(rig.store.load()->saved_at.seconds(), 0.0);
}

TEST(MonitorSupervisor, OutputIsSuspectWhileMonitorIsDown) {
  Rig rig(default_sup_options());
  rig.run_until(905.0);
  ASSERT_TRUE(rig.supervisor.monitor_alive());
  rig.supervisor.crash_monitor();
  EXPECT_FALSE(rig.supervisor.monitor_alive());
  EXPECT_EQ(rig.supervisor.monitor(), nullptr);
  EXPECT_EQ(rig.supervisor.output(), Verdict::kSuspect);
  // Heartbeats keep arriving during the downtime, but with nobody home the
  // supervisor must not trust.
  const std::size_t transitions = rig.log.size();
  rig.run_until(940.0);
  EXPECT_EQ(rig.supervisor.output(), Verdict::kSuspect);
  EXPECT_EQ(rig.log.size(), transitions);
}

TEST(MonitorSupervisor, WarmRestartRehydratesAndReTrusts) {
  Rig rig(default_sup_options());
  rig.run_until(905.0);
  const auto params_before = rig.supervisor.monitor()->current_params();
  rig.supervisor.crash_monitor();
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();

  EXPECT_EQ(rig.supervisor.warm_restarts(), 1u);
  EXPECT_EQ(rig.supervisor.cold_restarts(), 0u);
  EXPECT_EQ(rig.supervisor.snapshot_rejects(), 0u);
  ASSERT_TRUE(rig.supervisor.monitor_alive());

  // The rehydrated monitor runs the snapshot's parameters and is latched
  // at-risk until live estimates revalidate the target.
  EXPECT_DOUBLE_EQ(rig.supervisor.monitor()->current_params().eta.seconds(),
                   params_before.eta.seconds());
  EXPECT_TRUE(rig.supervisor.monitor()->qos_at_risk());
  EXPECT_EQ(rig.supervisor.monitor()->risk_reason(),
            AdaptiveMonitor::RiskReason::kWarmRestart);

  // The Eq. 6.3 window restored verbatim: the first live heartbeats
  // re-trust the output within a couple of sending periods.
  rig.run_until(940.0);
  EXPECT_EQ(rig.supervisor.output(), Verdict::kTrust);

  // After a post-restore reconfiguration round the latch clears.
  rig.run_until(1100.0);
  EXPECT_FALSE(rig.supervisor.monitor()->qos_at_risk());
  EXPECT_EQ(rig.supervisor.monitor()->risk_reason(),
            AdaptiveMonitor::RiskReason::kNone);

  // And the service keeps meeting its availability target afterwards.
  const auto rec = qos::replay(rig.log, TimePoint(950.0), TimePoint(1100.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);
}

TEST(MonitorSupervisor, ColdRestartWhenNoSnapshotExists) {
  Rig rig(default_sup_options());
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  rig.store.clear();  // stable storage lost too
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();

  EXPECT_EQ(rig.supervisor.warm_restarts(), 0u);
  EXPECT_EQ(rig.supervisor.cold_restarts(), 1u);
  ASSERT_TRUE(rig.supervisor.monitor_alive());
  // Conservative Chebyshev-bound parameters, flagged for revalidation.
  EXPECT_TRUE(rig.supervisor.monitor()->qos_at_risk());
  EXPECT_EQ(rig.supervisor.monitor()->risk_reason(),
            AdaptiveMonitor::RiskReason::kPostDisruption);
  // The conservative configuration still honors the registered detection
  // bound.
  EXPECT_LE(rig.supervisor.monitor()->relative_detection_bound().seconds(),
            8.0 + 1e-9);
  // Live estimates eventually revalidate and clear the latch.
  rig.run_until(1200.0);
  EXPECT_FALSE(rig.supervisor.monitor()->qos_at_risk());
}

TEST(MonitorSupervisor, ColdRestartOnCorruptSnapshot) {
  Rig rig(default_sup_options());
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  // Simulated disk corruption: one bit flips in stable storage.
  auto stored = rig.store.load();
  ASSERT_TRUE(stored.has_value());
  stored->bytes[stored->bytes.size() / 2] =
      static_cast<char>(stored->bytes[stored->bytes.size() / 2] ^ 0x01);
  rig.store.save(stored->bytes, stored->saved_at);
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();

  EXPECT_EQ(rig.supervisor.warm_restarts(), 0u);
  EXPECT_EQ(rig.supervisor.cold_restarts(), 1u);
  EXPECT_EQ(rig.supervisor.snapshot_rejects(), 1u);
  EXPECT_NE(rig.supervisor.last_restart_detail().find("snapshot"),
            std::string::npos);
}

/// Captures every restorer invocation: (warm, restored state).
struct ElectionProbe {
  std::vector<std::pair<bool, std::optional<persist::ElectionState>>> calls;

  static persist::ElectionState sample_state() {
    persist::ElectionState state;
    state.self = 2;
    state.has_leader = true;
    state.leader = 0;
    state.leader_since_s = 12.5;
    state.leader_changes = 3;
    persist::ElectionPeerState flappy;
    flappy.id = 0;
    flappy.incarnation = 1;
    flappy.demotions = 2;
    flappy.has_holddown = true;
    flappy.holddown_until_s = 99.0;
    state.peers.push_back(flappy);
    persist::ElectionPeerState quiet;
    quiet.id = 1;
    state.peers.push_back(quiet);
    return state;
  }

  void attach(MonitorSupervisor& supervisor) {
    supervisor.set_election_hooks(
        [] { return sample_state(); },
        [this](const std::optional<persist::ElectionState>& s, bool warm) {
          calls.emplace_back(warm, s);
        });
  }
};

TEST(MonitorSupervisor, WarmRestartRoundTripsElectionState) {
  Rig rig(default_sup_options());
  ElectionProbe probe;
  probe.attach(rig.supervisor);
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();

  ASSERT_EQ(rig.supervisor.warm_restarts(), 1u);
  ASSERT_EQ(probe.calls.size(), 1u);
  EXPECT_TRUE(probe.calls[0].first);  // warm
  // The state came back through the snapshot codec (stable storage), not a
  // reference: every field must have survived the round trip.
  ASSERT_TRUE(probe.calls[0].second.has_value());
  const persist::ElectionState& restored = *probe.calls[0].second;
  EXPECT_EQ(restored.self, 2u);
  EXPECT_TRUE(restored.has_leader);
  EXPECT_EQ(restored.leader, 0u);
  EXPECT_DOUBLE_EQ(restored.leader_since_s, 12.5);
  EXPECT_EQ(restored.leader_changes, 3u);
  ASSERT_EQ(restored.peers.size(), 2u);
  EXPECT_EQ(restored.peers[0].incarnation, 1u);
  EXPECT_EQ(restored.peers[0].demotions, 2u);
  EXPECT_TRUE(restored.peers[0].has_holddown);
  EXPECT_DOUBLE_EQ(restored.peers[0].holddown_until_s, 99.0);
  EXPECT_FALSE(restored.peers[1].has_holddown);
}

TEST(MonitorSupervisor, StaleSnapshotRestoresElectionCold) {
  // The elector side of the stale-snapshot contract: when the monitor
  // falls back cold, the restorer is told so with no state — the elector
  // must rejoin as a follower instead of resurrecting an old leader view.
  auto opts = default_sup_options();
  opts.max_snapshot_age = seconds(60.0);
  Rig rig(opts);
  ElectionProbe probe;
  probe.attach(rig.supervisor);
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  rig.run_until(1025.0);  // the last snapshot ages past the 60 s bound
  rig.supervisor.restart_monitor();

  ASSERT_EQ(rig.supervisor.cold_restarts(), 1u);
  ASSERT_EQ(probe.calls.size(), 1u);
  EXPECT_FALSE(probe.calls[0].first);              // cold
  EXPECT_FALSE(probe.calls[0].second.has_value()); // no state to revive
}

/// Captures every fleet restorer invocation: (warm, restored summary).
struct FleetProbe {
  std::vector<std::pair<bool, std::optional<persist::FleetState>>> calls;

  static persist::FleetState sample_state() {
    persist::FleetState state;
    state.processes = 7;
    state.shards.push_back(persist::FleetShardState{0, 4, 2, 31});
    state.shards.push_back(persist::FleetShardState{1, 3, 0, 30});
    return state;
  }

  void attach(MonitorSupervisor& supervisor) {
    supervisor.set_fleet_hooks(
        [] { return sample_state(); },
        [this](const std::optional<persist::FleetState>& s, bool warm) {
          calls.emplace_back(warm, s);
        });
  }
};

TEST(MonitorSupervisor, WarmRestartRoundTripsFleetSummary) {
  Rig rig(default_sup_options());
  FleetProbe probe;
  probe.attach(rig.supervisor);
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();

  ASSERT_EQ(rig.supervisor.warm_restarts(), 1u);
  ASSERT_EQ(probe.calls.size(), 1u);
  EXPECT_TRUE(probe.calls[0].first);  // warm
  // The summary came back through the snapshot codec, not a reference.
  ASSERT_TRUE(probe.calls[0].second.has_value());
  const persist::FleetState& restored = *probe.calls[0].second;
  EXPECT_EQ(restored.processes, 7u);
  ASSERT_EQ(restored.shards.size(), 2u);
  EXPECT_EQ(restored.shards[0].shard, 0u);
  EXPECT_EQ(restored.shards[0].processes, 4u);
  EXPECT_EQ(restored.shards[0].max_incarnation, 2u);
  EXPECT_EQ(restored.shards[0].max_seq, 31u);
  EXPECT_EQ(restored.shards[1].shard, 1u);
  EXPECT_EQ(restored.shards[1].processes, 3u);
  EXPECT_EQ(restored.shards[1].max_incarnation, 0u);
  EXPECT_EQ(restored.shards[1].max_seq, 30u);
}

TEST(MonitorSupervisor, StaleSnapshotRestoresFleetCold) {
  auto opts = default_sup_options();
  opts.max_snapshot_age = seconds(60.0);
  Rig rig(opts);
  FleetProbe probe;
  probe.attach(rig.supervisor);
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  rig.run_until(1025.0);  // the last snapshot ages past the 60 s bound
  rig.supervisor.restart_monitor();

  ASSERT_EQ(rig.supervisor.cold_restarts(), 1u);
  ASSERT_EQ(probe.calls.size(), 1u);
  EXPECT_FALSE(probe.calls[0].first);               // cold
  EXPECT_FALSE(probe.calls[0].second.has_value());  // no summary to revive
}

TEST(MonitorSupervisor, FleetlessSnapshotRestoresFleetCold) {
  // Hooks attached after the last snapshot cycle: the monitor itself warm
  // restarts, but the snapshot carries no fleet section, so the engine is
  // told to reset cold-style.
  Rig rig(default_sup_options());
  rig.run_until(905.0);  // snapshots taken with no fleet hooks attached
  FleetProbe probe;
  probe.attach(rig.supervisor);
  rig.supervisor.crash_monitor();
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();

  ASSERT_EQ(rig.supervisor.warm_restarts(), 1u);
  ASSERT_EQ(probe.calls.size(), 1u);
  EXPECT_FALSE(probe.calls[0].first);
  EXPECT_FALSE(probe.calls[0].second.has_value());
}

TEST(MonitorSupervisor, RejectsNullFleetHooks) {
  Rig rig(default_sup_options());
  EXPECT_THROW(rig.supervisor.set_fleet_hooks(
                   nullptr,
                   [](const std::optional<persist::FleetState>&, bool) {}),
               std::invalid_argument);
  EXPECT_THROW(rig.supervisor.set_fleet_hooks(
                   [] { return persist::FleetState{}; }, nullptr),
               std::invalid_argument);
}

TEST(MonitorSupervisor, ColdRestartOnStaleSnapshot) {
  auto opts = default_sup_options();
  opts.max_snapshot_age = seconds(60.0);
  Rig rig(opts);
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  // Down for 120 s: the last snapshot (t = 900) ages past the 60 s bound.
  rig.run_until(1025.0);
  rig.supervisor.restart_monitor();

  EXPECT_EQ(rig.supervisor.warm_restarts(), 0u);
  EXPECT_EQ(rig.supervisor.cold_restarts(), 1u);
  EXPECT_EQ(rig.supervisor.snapshot_rejects(), 1u);
  EXPECT_NE(rig.supervisor.last_restart_detail().find("stale"),
            std::string::npos);
}

TEST(MonitorSupervisor, ColdAlwaysPolicyNeverRehydrates) {
  auto opts = default_sup_options();
  opts.policy = MonitorSupervisor::RestartPolicy::kColdAlways;
  Rig rig(opts);
  rig.run_until(905.0);
  rig.supervisor.crash_monitor();
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();
  EXPECT_EQ(rig.supervisor.warm_restarts(), 0u);
  EXPECT_EQ(rig.supervisor.cold_restarts(), 1u);
}

TEST(MonitorSupervisor, SurvivesRepeatedCrashRestartCycles) {
  Rig rig(default_sup_options());
  double t = 500.0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    rig.run_until(t);
    rig.supervisor.crash_monitor();
    rig.run_until(t + 30.0);
    rig.supervisor.restart_monitor();
    t += 300.0;
  }
  rig.run_until(t + 200.0);
  EXPECT_EQ(rig.supervisor.warm_restarts(), 3u);
  ASSERT_TRUE(rig.supervisor.monitor_alive());
  EXPECT_FALSE(rig.supervisor.monitor()->qos_at_risk());
  EXPECT_EQ(rig.supervisor.output(), Verdict::kTrust);
}

TEST(MonitorSupervisor, RegistryFacadeSurvivesWarmRestart) {
  Rig rig(default_sup_options());
  const AppId a = rig.supervisor.register_app(
      RelativeRequirements{seconds(6.0), seconds(3000.0), seconds(3.0)});
  const AppId b = rig.supervisor.register_app(
      RelativeRequirements{seconds(9.0), seconds(1500.0), seconds(5.0)});
  EXPECT_EQ(rig.supervisor.app_count(), 2u);
  rig.run_until(905.0);

  rig.supervisor.crash_monitor();
  rig.run_until(935.0);
  rig.supervisor.restart_monitor();
  ASSERT_EQ(rig.supervisor.warm_restarts(), 1u);

  // The demand set rode along in the snapshot.
  EXPECT_EQ(rig.supervisor.app_count(), 2u);
  // Handles remain live: update and deregister still work, and new
  // registrations do not reuse restored ids.
  EXPECT_TRUE(rig.supervisor.update_app(
      a, RelativeRequirements{seconds(5.0), seconds(4000.0), seconds(3.0)}));
  EXPECT_TRUE(rig.supervisor.deregister_app(b));
  EXPECT_FALSE(rig.supervisor.deregister_app(b));
  const AppId c = rig.supervisor.register_app(
      RelativeRequirements{seconds(7.0), seconds(1000.0), seconds(4.0)});
  EXPECT_GT(c, b);
  EXPECT_EQ(rig.supervisor.app_count(), 2u);
}

TEST(MonitorSupervisor, RegistryPushesMergedRequirementIntoMonitor) {
  Rig rig(default_sup_options());
  rig.run_until(1500.0);
  const double eta_before =
      rig.supervisor.monitor()->current_params().eta.seconds();
  // A far stricter recurrence demand must shrink eta at the next rounds.
  rig.supervisor.register_app(
      RelativeRequirements{seconds(8.0), days(30.0), seconds(4.0)});
  rig.run_until(3000.0);
  EXPECT_LT(rig.supervisor.monitor()->current_params().eta.seconds(),
            eta_before);
}

TEST(MonitorSupervisor, RejectsLifecycleMisuse) {
  Rig rig(default_sup_options());
  rig.run_until(100.0);
  EXPECT_THROW(rig.supervisor.restart_monitor(), std::invalid_argument);
  rig.supervisor.crash_monitor();
  EXPECT_THROW(rig.supervisor.crash_monitor(), std::invalid_argument);
  rig.supervisor.restart_monitor();
  EXPECT_TRUE(rig.supervisor.monitor_alive());
}

TEST(MonitorSupervisor, RejectsInvalidOptions) {
  core::Testbed tb(Rig::make_config(0.01, 6099));
  persist::MemorySnapshotStore store;
  auto opts = default_sup_options();
  opts.snapshot_interval = seconds(0.0);
  EXPECT_THROW(MonitorSupervisor(tb.simulator(), tb.q_clock(), tb.sender(),
                                 store, opts),
               std::invalid_argument);
  opts = default_sup_options();
  opts.cold_loss_assumption = 1.5;
  EXPECT_THROW(MonitorSupervisor(tb.simulator(), tb.q_clock(), tb.sender(),
                                 store, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace chenfd::service
