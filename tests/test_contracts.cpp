// The contracts layer (src/common/check.hpp): exception types, messages,
// evaluation semantics, and audit-level gating.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace chenfd {
namespace {

TEST(Contracts, ExpectsFunctionThrowsInvalidArgument) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_THROW(expects(false, "bad arg"), std::invalid_argument);
}

TEST(Contracts, EnsuresFunctionThrowsLogicError) {
  EXPECT_NO_THROW(ensures(true, "fine"));
  EXPECT_THROW(ensures(false, "broken"), std::logic_error);
}

TEST(Contracts, ExpectsMacroThrowsInvalidArgumentWithLocation) {
  try {
    CHENFD_EXPECTS(false, "macro precondition violated");
    FAIL() << "CHENFD_EXPECTS(false, ...) did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("macro precondition violated"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos)
        << "message should carry the source location: " << what;
  }
}

TEST(Contracts, EnsuresMacroThrowsLogicError) {
  EXPECT_NO_THROW(CHENFD_ENSURES(true, "fine"));
  EXPECT_THROW(CHENFD_ENSURES(false, "invariant broken"), std::logic_error);
}

TEST(Contracts, ExpectsIsInvalidArgumentNotJustLogicError) {
  // std::invalid_argument derives from std::logic_error; the distinction
  // matters for callers that map argument errors to usage messages.
  bool caught_invalid = false;
  try {
    CHENFD_EXPECTS(false, "x");
  } catch (const std::invalid_argument&) {
    caught_invalid = true;
  }
  EXPECT_TRUE(caught_invalid);
}

TEST(Contracts, ActiveMacroEvaluatesConditionExactlyOnce) {
  int evaluations = 0;
  CHENFD_EXPECTS(++evaluations > 0, "side-effecting condition");
  EXPECT_EQ(evaluations, 1);
  CHENFD_ENSURES(++evaluations > 0, "side-effecting condition");
  EXPECT_EQ(evaluations, 2);
}

TEST(Contracts, AuditMacroFollowsAuditLevel) {
  // CHENFD_AUDIT is active only at level >= 2 (the asan-ubsan preset);
  // the default build compiles it out entirely.
  int evaluations = 0;
#if CHENFD_AUDIT_LEVEL >= 2
  EXPECT_THROW(CHENFD_AUDIT(false, "deep invariant"), std::logic_error);
  CHENFD_AUDIT(++evaluations > 0, "evaluated at level 2");
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_NO_THROW(CHENFD_AUDIT(false, "inactive below level 2"));
  CHENFD_AUDIT(++evaluations > 0, "not evaluated below level 2");
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Contracts, MacrosAreSingleStatements) {
  // Must compose with unbraced if/else (the do-while(false) idiom).
  if (true)
    CHENFD_EXPECTS(true, "then-branch");
  else
    CHENFD_ENSURES(true, "else-branch");
  SUCCEED();
}

}  // namespace
}  // namespace chenfd
