// Tests for the adaptive failure detection service (Section 8.1).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"
#include "service/adaptive.hpp"

namespace chenfd::service {
namespace {

using core::RelativeRequirements;

struct Rig {
  core::Testbed tb;
  AdaptiveMonitor monitor;
  std::vector<Transition> log;

  Rig(double p_loss, double delay_mean, AdaptiveMonitor::Options opts,
      std::uint64_t seed)
      : tb(make_config(p_loss, delay_mean, seed)),
        monitor(tb.simulator(), tb.q_clock(), tb.sender(), opts) {
    monitor.add_listener([this](const Transition& t) { log.push_back(t); });
    tb.attach(monitor);
    tb.start();
  }

  static core::Testbed::Config make_config(double p_loss, double delay_mean,
                                           std::uint64_t seed) {
    core::Testbed::Config cfg;
    cfg.delay = std::make_unique<dist::Exponential>(delay_mean);
    cfg.loss = std::make_unique<net::BernoulliLoss>(p_loss);
    cfg.eta = seconds(1.0);
    cfg.seed = seed;
    return cfg;
  }
};

AdaptiveMonitor::Options default_options() {
  AdaptiveMonitor::Options o;
  o.requirements =
      RelativeRequirements{seconds(8.0), seconds(2000.0), seconds(4.0)};
  o.initial = core::NfdEParams{Duration(1.0), Duration(1.0), 32};
  o.reconfig_interval = seconds(50.0);
  return o;
}

TEST(AdaptiveMonitor, ReconfiguresTowardOptimalEta) {
  Rig rig(0.01, 0.02, default_options(), 5001);
  rig.tb.simulator().run_until(TimePoint(2000.0));

  // Reference: what the Section 6 configurator would choose with the TRUE
  // network parameters.
  const auto ref = core::configure_nfd_u(
      RelativeRequirements{seconds(8.0), seconds(2000.0), seconds(4.0)},
      0.01, 0.02 * 0.02);
  ASSERT_TRUE(ref.achievable());
  EXPECT_GE(rig.monitor.reconfigurations(), 1u);
  EXPECT_NEAR(rig.monitor.current_params().eta.seconds(),
              ref.params->eta.seconds(),
              0.25 * ref.params->eta.seconds());
  EXPECT_FALSE(rig.monitor.qos_at_risk());
}

TEST(AdaptiveMonitor, SlowsHeartbeatRateToSaveBandwidth) {
  // The initial eta = 1 is more aggressive than the QoS needs; the service
  // should renegotiate a larger (cheaper) eta.
  Rig rig(0.01, 0.02, default_options(), 5002);
  rig.tb.simulator().run_until(TimePoint(2000.0));
  EXPECT_GT(rig.monitor.current_params().eta.seconds(), 2.0);
  EXPECT_GT(rig.tb.sender().eta().seconds(), 2.0);
  // Sender and detector stay in sync on eta.
  EXPECT_DOUBLE_EQ(rig.tb.sender().eta().seconds(),
                   rig.monitor.current_params().eta.seconds());
}

TEST(AdaptiveMonitor, DetectionBoundTracksParameters) {
  Rig rig(0.01, 0.02, default_options(), 5003);
  rig.tb.simulator().run_until(TimePoint(2000.0));
  const auto p = rig.monitor.current_params();
  const double bound = rig.monitor.relative_detection_bound().seconds();
  EXPECT_DOUBLE_EQ(bound, p.eta.seconds() + p.alpha.seconds());
  // And it respects the relative requirement T_D^u.
  EXPECT_LE(bound, 8.0 + 1e-9);
}

TEST(AdaptiveMonitor, KeepsTrustingAcrossReconfigurations) {
  // Epoch resets must not flap the output: in a loss-free run the detector
  // should trust essentially the whole time after warm-up.
  auto opts = default_options();
  Rig rig(0.0, 0.02, opts, 5004);
  rig.tb.simulator().run_until(TimePoint(3000.0));
  const auto rec =
      qos::replay(rig.log, TimePoint(100.0), TimePoint(3000.0));
  EXPECT_GT(rec.query_accuracy(), 0.98);
}

TEST(AdaptiveMonitor, AdaptsToNetworkDegradation) {
  auto opts = default_options();
  // Looser accuracy target so the degraded network stays feasible.
  opts.requirements =
      RelativeRequirements{seconds(10.0), seconds(500.0), seconds(5.0)};
  Rig rig(0.01, 0.02, opts, 5005);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  const double variance_before = rig.monitor.estimator().delay_variance();

  // Regime change: delays grow 10x in mean (100x in variance), loss 5x.
  rig.tb.link().set_delay(std::make_unique<dist::Exponential>(0.2));
  rig.tb.link().set_loss(std::make_unique<net::BernoulliLoss>(0.05));
  rig.tb.simulator().run_until(TimePoint(4000.0));

  EXPECT_GT(rig.monitor.estimator().delay_variance(),
            10.0 * variance_before);
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  // Still functional after the change: mostly trusting.
  const auto rec =
      qos::replay(rig.log, TimePoint(2500.0), TimePoint(4000.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);
}

TEST(AdaptiveMonitor, UpdateRequirementsRetargets) {
  Rig rig(0.01, 0.02, default_options(), 5006);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  const double eta_before = rig.monitor.current_params().eta.seconds();
  // A far stricter mistake-recurrence target must shrink eta.
  rig.monitor.update_requirements(
      RelativeRequirements{seconds(8.0), days(30.0), seconds(4.0)});
  rig.tb.simulator().run_until(TimePoint(3000.0));
  EXPECT_LT(rig.monitor.current_params().eta.seconds(), eta_before);
}

TEST(AdaptiveMonitor, HysteresisAvoidsNeedlessEpochResets) {
  auto opts = default_options();
  opts.eta_hysteresis = 1000.0;  // effectively: never rebase
  Rig rig(0.01, 0.02, opts, 5007);
  rig.tb.simulator().run_until(TimePoint(2000.0));
  EXPECT_EQ(rig.monitor.reconfigurations(), 0u);
  // eta untouched; only alpha may track the target.
  EXPECT_DOUBLE_EQ(rig.monitor.current_params().eta.seconds(), 1.0);
}

TEST(AdaptiveMonitor, RejectsInvalidOptions) {
  core::Testbed tb(Rig::make_config(0.01, 0.02, 5008));
  auto opts = default_options();
  opts.requirements = RelativeRequirements{seconds(0.0), seconds(1.0),
                                           seconds(1.0)};
  EXPECT_THROW(AdaptiveMonitor(tb.simulator(), tb.q_clock(), tb.sender(),
                               opts),
               std::invalid_argument);
}

TEST(AdaptiveMonitor, DetectsCrashAfterRebases) {
  // The crash path must survive epoch resets: after the service has
  // renegotiated the rate at least once, a real crash is still detected
  // within the relative bound (+ E(D), + one estimation slack).
  Rig rig(0.01, 0.02, default_options(), 5010);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  ASSERT_GE(rig.monitor.reconfigurations(), 1u);
  const TimePoint crash(1501.25);
  rig.tb.crash_p_at(crash);
  rig.tb.simulator().run_until(TimePoint(1600.0));
  EXPECT_EQ(rig.monitor.output(), Verdict::kSuspect);
  ASSERT_FALSE(rig.log.empty());
  EXPECT_EQ(rig.log.back().to, Verdict::kSuspect);
  const double t_d = (rig.log.back().at - crash).seconds();
  EXPECT_GT(t_d, 0.0);
  EXPECT_LE(t_d,
            rig.monitor.relative_detection_bound().seconds() + 0.02 + 0.5);
}

TEST(AdaptiveMonitor, SurvivesPartitionHealWithoutPoisoningEstimates) {
  // Acceptance scenario for the hardened service (DESIGN.md section 8): a
  // 400s partition must raise qos_at_risk while it lasts, trigger exactly
  // one discontinuity epoch reset at heal, and leave finite estimates and
  // a cleared risk flag once the service reconverges.
  Rig rig(0.05, 0.02, default_options(), 5020);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());

  rig.tb.link().set_partitioned(true);
  rig.tb.simulator().run_until(TimePoint(1900.0));
  EXPECT_TRUE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kSilence);

  rig.tb.link().set_partitioned(false);
  rig.tb.simulator().run_until(TimePoint(3500.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kNone);
  EXPECT_EQ(rig.monitor.epoch_resets(), 1u);
  EXPECT_TRUE(std::isfinite(rig.monitor.estimator().delay_variance()));
  EXPECT_TRUE(std::isfinite(rig.monitor.estimator().loss_probability()));
  EXPECT_GT(rig.monitor.current_params().eta.seconds(), 0.0);
  // Reconverged: mostly trusting again well after the heal.
  const auto rec =
      qos::replay(rig.log, TimePoint(2500.0), TimePoint(3500.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);
}

TEST(AdaptiveMonitor, CrashRecoveryTriggersEpochResetAndRevalidation) {
  Rig rig(0.05, 0.02, default_options(), 5021);
  rig.tb.simulator().run_until(TimePoint(1000.0));
  rig.tb.crash_p_at(TimePoint(1500.0));
  rig.tb.recover_p_at(TimePoint(1800.0));
  rig.tb.simulator().run_until(TimePoint(1790.0));
  // Mid-outage: the silence detector has flagged the disruption.
  EXPECT_TRUE(rig.monitor.qos_at_risk());

  rig.tb.simulator().run_until(TimePoint(3200.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  EXPECT_GE(rig.monitor.epoch_resets(), 1u);
  EXPECT_TRUE(std::isfinite(rig.monitor.estimator().delay_variance()));
  // The epoch rebase restores fast re-trust after the recovery (a fixed
  // NFD-E would drag the downtime through its Eq. 6.3 window instead).
  const auto rec =
      qos::replay(rig.log, TimePoint(2200.0), TimePoint(3200.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);
}

TEST(AdaptiveMonitor, OngoingSilenceFlagsRiskWithoutBackingOff) {
  // During a long outage every reconfiguration round sees stale estimates
  // and must only raise the silence flag: the running parameters stay
  // untouched (configuring from pre-outage estimates would encode a dead
  // regime) and the backoff multiplier stays at 1 — backoff is reserved
  // for infeasible/unusable rounds, so revalidation probing keeps its full
  // cadence and the service notices the heal quickly.
  Rig rig(0.05, 0.02, default_options(), 5022);
  rig.tb.simulator().run_until(TimePoint(800.0));
  const double eta_before = rig.monitor.current_params().eta.seconds();
  rig.tb.link().set_partitioned(true);
  rig.tb.simulator().run_until(TimePoint(2500.0));
  EXPECT_TRUE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kSilence);
  EXPECT_DOUBLE_EQ(rig.monitor.backoff_factor(), 1.0);
  EXPECT_DOUBLE_EQ(rig.monitor.current_params().eta.seconds(), eta_before);
  EXPECT_EQ(rig.monitor.epoch_resets(), 0u);  // reset happens at resumption
}

TEST(AdaptiveMonitor, RejectsInvalidHardeningOptions) {
  core::Testbed tb(Rig::make_config(0.01, 0.02, 5023));
  auto opts = default_options();
  opts.silence_factor = -1.0;
  EXPECT_THROW(AdaptiveMonitor(tb.simulator(), tb.q_clock(), tb.sender(),
                               opts),
               std::invalid_argument);
  opts = default_options();
  opts.max_backoff_factor = 0.5;
  EXPECT_THROW(AdaptiveMonitor(tb.simulator(), tb.q_clock(), tb.sender(),
                               opts),
               std::invalid_argument);
}

TEST(AdaptiveMonitor, StopQuiescesService) {
  Rig rig(0.01, 0.02, default_options(), 5009);
  rig.tb.simulator().run_until(TimePoint(500.0));
  rig.monitor.stop();
  const std::size_t reconfigs = rig.monitor.reconfigurations();
  const std::size_t transitions = rig.log.size();
  rig.tb.simulator().run_until(TimePoint(2000.0));
  EXPECT_EQ(rig.monitor.reconfigurations(), reconfigs);
  EXPECT_EQ(rig.log.size(), transitions);
}

}  // namespace
}  // namespace chenfd::service
