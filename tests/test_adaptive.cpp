// Tests for the adaptive failure detection service (Section 8.1).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"
#include "service/adaptive.hpp"

namespace chenfd::service {
namespace {

using core::RelativeRequirements;

struct Rig {
  core::Testbed tb;
  AdaptiveMonitor monitor;
  std::vector<Transition> log;

  Rig(double p_loss, double delay_mean, AdaptiveMonitor::Options opts,
      std::uint64_t seed)
      : tb(make_config(p_loss, delay_mean, seed)),
        monitor(tb.simulator(), tb.q_clock(), tb.sender(), opts) {
    monitor.add_listener([this](const Transition& t) { log.push_back(t); });
    tb.attach(monitor);
    tb.start();
  }

  static core::Testbed::Config make_config(double p_loss, double delay_mean,
                                           std::uint64_t seed) {
    core::Testbed::Config cfg;
    cfg.delay = std::make_unique<dist::Exponential>(delay_mean);
    cfg.loss = std::make_unique<net::BernoulliLoss>(p_loss);
    cfg.eta = seconds(1.0);
    cfg.seed = seed;
    return cfg;
  }
};

AdaptiveMonitor::Options default_options() {
  AdaptiveMonitor::Options o;
  o.requirements =
      RelativeRequirements{seconds(8.0), seconds(2000.0), seconds(4.0)};
  o.initial = core::NfdEParams{Duration(1.0), Duration(1.0), 32};
  o.reconfig_interval = seconds(50.0);
  return o;
}

TEST(AdaptiveMonitor, ReconfiguresTowardOptimalEta) {
  Rig rig(0.01, 0.02, default_options(), 5001);
  rig.tb.simulator().run_until(TimePoint(2000.0));

  // Reference: what the Section 6 configurator would choose with the TRUE
  // network parameters.
  const auto ref = core::configure_nfd_u(
      RelativeRequirements{seconds(8.0), seconds(2000.0), seconds(4.0)},
      0.01, 0.02 * 0.02);
  ASSERT_TRUE(ref.achievable());
  EXPECT_GE(rig.monitor.reconfigurations(), 1u);
  EXPECT_NEAR(rig.monitor.current_params().eta.seconds(),
              ref.params->eta.seconds(),
              0.25 * ref.params->eta.seconds());
  EXPECT_FALSE(rig.monitor.qos_at_risk());
}

TEST(AdaptiveMonitor, SlowsHeartbeatRateToSaveBandwidth) {
  // The initial eta = 1 is more aggressive than the QoS needs; the service
  // should renegotiate a larger (cheaper) eta.
  Rig rig(0.01, 0.02, default_options(), 5002);
  rig.tb.simulator().run_until(TimePoint(2000.0));
  EXPECT_GT(rig.monitor.current_params().eta.seconds(), 2.0);
  EXPECT_GT(rig.tb.sender().eta().seconds(), 2.0);
  // Sender and detector stay in sync on eta.
  EXPECT_DOUBLE_EQ(rig.tb.sender().eta().seconds(),
                   rig.monitor.current_params().eta.seconds());
}

TEST(AdaptiveMonitor, DetectionBoundTracksParameters) {
  Rig rig(0.01, 0.02, default_options(), 5003);
  rig.tb.simulator().run_until(TimePoint(2000.0));
  const auto p = rig.monitor.current_params();
  const double bound = rig.monitor.relative_detection_bound().seconds();
  EXPECT_DOUBLE_EQ(bound, p.eta.seconds() + p.alpha.seconds());
  // And it respects the relative requirement T_D^u.
  EXPECT_LE(bound, 8.0 + 1e-9);
}

TEST(AdaptiveMonitor, KeepsTrustingAcrossReconfigurations) {
  // Epoch resets must not flap the output: in a loss-free run the detector
  // should trust essentially the whole time after warm-up.
  auto opts = default_options();
  Rig rig(0.0, 0.02, opts, 5004);
  rig.tb.simulator().run_until(TimePoint(3000.0));
  const auto rec =
      qos::replay(rig.log, TimePoint(100.0), TimePoint(3000.0));
  EXPECT_GT(rec.query_accuracy(), 0.98);
}

TEST(AdaptiveMonitor, AdaptsToNetworkDegradation) {
  auto opts = default_options();
  // Looser accuracy target so the degraded network stays feasible.
  opts.requirements =
      RelativeRequirements{seconds(10.0), seconds(500.0), seconds(5.0)};
  Rig rig(0.01, 0.02, opts, 5005);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  const double variance_before = rig.monitor.estimator().delay_variance();

  // Regime change: delays grow 10x in mean (100x in variance), loss 5x.
  rig.tb.link().set_delay(std::make_unique<dist::Exponential>(0.2));
  rig.tb.link().set_loss(std::make_unique<net::BernoulliLoss>(0.05));
  rig.tb.simulator().run_until(TimePoint(4000.0));

  EXPECT_GT(rig.monitor.estimator().delay_variance(),
            10.0 * variance_before);
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  // Still functional after the change: mostly trusting.
  const auto rec =
      qos::replay(rig.log, TimePoint(2500.0), TimePoint(4000.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);
}

TEST(AdaptiveMonitor, UpdateRequirementsRetargets) {
  Rig rig(0.01, 0.02, default_options(), 5006);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  const double eta_before = rig.monitor.current_params().eta.seconds();
  // A far stricter mistake-recurrence target must shrink eta.
  rig.monitor.update_requirements(
      RelativeRequirements{seconds(8.0), days(30.0), seconds(4.0)});
  rig.tb.simulator().run_until(TimePoint(3000.0));
  EXPECT_LT(rig.monitor.current_params().eta.seconds(), eta_before);
}

TEST(AdaptiveMonitor, HysteresisAvoidsNeedlessEpochResets) {
  auto opts = default_options();
  opts.eta_hysteresis = 1000.0;  // effectively: never rebase
  Rig rig(0.01, 0.02, opts, 5007);
  rig.tb.simulator().run_until(TimePoint(2000.0));
  EXPECT_EQ(rig.monitor.reconfigurations(), 0u);
  // eta untouched; only alpha may track the target.
  EXPECT_DOUBLE_EQ(rig.monitor.current_params().eta.seconds(), 1.0);
}

TEST(AdaptiveMonitor, RejectsInvalidOptions) {
  core::Testbed tb(Rig::make_config(0.01, 0.02, 5008));
  auto opts = default_options();
  opts.requirements = RelativeRequirements{seconds(0.0), seconds(1.0),
                                           seconds(1.0)};
  EXPECT_THROW(AdaptiveMonitor(tb.simulator(), tb.q_clock(), tb.sender(),
                               opts),
               std::invalid_argument);
}

TEST(AdaptiveMonitor, DetectsCrashAfterRebases) {
  // The crash path must survive epoch resets: after the service has
  // renegotiated the rate at least once, a real crash is still detected
  // within the relative bound (+ E(D), + one estimation slack).
  Rig rig(0.01, 0.02, default_options(), 5010);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  ASSERT_GE(rig.monitor.reconfigurations(), 1u);
  const TimePoint crash(1501.25);
  rig.tb.crash_p_at(crash);
  rig.tb.simulator().run_until(TimePoint(1600.0));
  EXPECT_EQ(rig.monitor.output(), Verdict::kSuspect);
  ASSERT_FALSE(rig.log.empty());
  EXPECT_EQ(rig.log.back().to, Verdict::kSuspect);
  const double t_d = (rig.log.back().at - crash).seconds();
  EXPECT_GT(t_d, 0.0);
  EXPECT_LE(t_d,
            rig.monitor.relative_detection_bound().seconds() + 0.02 + 0.5);
}

TEST(AdaptiveMonitor, SurvivesPartitionHealWithoutPoisoningEstimates) {
  // Acceptance scenario for the hardened service (DESIGN.md section 8): a
  // 400s partition must raise qos_at_risk while it lasts, trigger exactly
  // one discontinuity epoch reset at heal, and leave finite estimates and
  // a cleared risk flag once the service reconverges.
  Rig rig(0.05, 0.02, default_options(), 5020);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());

  rig.tb.link().set_partitioned(true);
  rig.tb.simulator().run_until(TimePoint(1900.0));
  EXPECT_TRUE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kSilence);

  rig.tb.link().set_partitioned(false);
  rig.tb.simulator().run_until(TimePoint(3500.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kNone);
  EXPECT_EQ(rig.monitor.epoch_resets(), 1u);
  EXPECT_TRUE(std::isfinite(rig.monitor.estimator().delay_variance()));
  EXPECT_TRUE(std::isfinite(rig.monitor.estimator().loss_probability()));
  EXPECT_GT(rig.monitor.current_params().eta.seconds(), 0.0);
  // Reconverged: mostly trusting again well after the heal.
  const auto rec =
      qos::replay(rig.log, TimePoint(2500.0), TimePoint(3500.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);
}

TEST(AdaptiveMonitor, CrashRecoveryTriggersEpochResetAndRevalidation) {
  Rig rig(0.05, 0.02, default_options(), 5021);
  rig.tb.simulator().run_until(TimePoint(1000.0));
  rig.tb.crash_p_at(TimePoint(1500.0));
  rig.tb.recover_p_at(TimePoint(1800.0));
  rig.tb.simulator().run_until(TimePoint(1790.0));
  // Mid-outage: the silence detector has flagged the disruption.
  EXPECT_TRUE(rig.monitor.qos_at_risk());

  rig.tb.simulator().run_until(TimePoint(3200.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  EXPECT_GE(rig.monitor.epoch_resets(), 1u);
  EXPECT_TRUE(std::isfinite(rig.monitor.estimator().delay_variance()));
  // The epoch rebase restores fast re-trust after the recovery (a fixed
  // NFD-E would drag the downtime through its Eq. 6.3 window instead).
  const auto rec =
      qos::replay(rig.log, TimePoint(2200.0), TimePoint(3200.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);
}

TEST(AdaptiveMonitor, OngoingSilenceFlagsRiskWithoutBackingOff) {
  // During a long outage every reconfiguration round sees stale estimates
  // and must only raise the silence flag: the running parameters stay
  // untouched (configuring from pre-outage estimates would encode a dead
  // regime) and the backoff multiplier stays at 1 — backoff is reserved
  // for infeasible/unusable rounds, so revalidation probing keeps its full
  // cadence and the service notices the heal quickly.
  Rig rig(0.05, 0.02, default_options(), 5022);
  rig.tb.simulator().run_until(TimePoint(800.0));
  const double eta_before = rig.monitor.current_params().eta.seconds();
  rig.tb.link().set_partitioned(true);
  rig.tb.simulator().run_until(TimePoint(2500.0));
  EXPECT_TRUE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kSilence);
  EXPECT_DOUBLE_EQ(rig.monitor.backoff_factor(), 1.0);
  EXPECT_DOUBLE_EQ(rig.monitor.current_params().eta.seconds(), eta_before);
  EXPECT_EQ(rig.monitor.epoch_resets(), 0u);  // reset happens at resumption
}

TEST(AdaptiveMonitor, RejectsInvalidHardeningOptions) {
  core::Testbed tb(Rig::make_config(0.01, 0.02, 5023));
  auto opts = default_options();
  opts.silence_factor = -1.0;
  EXPECT_THROW(AdaptiveMonitor(tb.simulator(), tb.q_clock(), tb.sender(),
                               opts),
               std::invalid_argument);
  opts = default_options();
  opts.max_backoff_factor = 0.5;
  EXPECT_THROW(AdaptiveMonitor(tb.simulator(), tb.q_clock(), tb.sender(),
                               opts),
               std::invalid_argument);
}

TEST(AdaptiveMonitor, RiskReasonWalksSilenceThenPostDisruptionThenNone) {
  // The full organic latch walk of a disruption: kNone before the fault,
  // kSilence while the link is dead, kPostDisruption the moment the stream
  // resumes (discontinuity epoch reset), and kNone only after a
  // reconfiguration round succeeds against post-disruption estimates.
  Rig rig(0.05, 0.02, default_options(), 5030);
  rig.tb.simulator().run_until(TimePoint(1500.0));
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kNone);

  rig.tb.link().set_partitioned(true);
  rig.tb.simulator().run_until(TimePoint(1900.0));
  EXPECT_TRUE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kSilence);

  rig.tb.link().set_partitioned(false);
  // Just past the first resumed heartbeat (the renegotiated eta can be
  // several seconds, so allow two periods): the epoch reset has happened
  // but no round has succeeded yet — the fresh window is not primed.
  rig.tb.simulator().run_until(TimePoint(1917.0));
  EXPECT_TRUE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(),
            AdaptiveMonitor::RiskReason::kPostDisruption);
  EXPECT_EQ(rig.monitor.epoch_resets(), 1u);

  rig.tb.simulator().run_until(TimePoint(3500.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kNone);
}

TEST(AdaptiveMonitor, AggressiveTargetCranksTheHeartbeatRate) {
  // A 0.2 s detection budget with a 2000 s recurrence bound cannot be met
  // at the initial 1 Hz rate, but the Section 6 procedure trades bandwidth
  // for accuracy: f(eta) grows without bound as eta -> 0 (Appendix D), so
  // the service renegotiates a much faster rate instead of declaring the
  // target infeasible.
  auto opts = default_options();
  opts.requirements =
      RelativeRequirements{seconds(0.2), seconds(2000.0), seconds(4.0)};
  Rig rig(0.01, 0.02, opts, 5031);
  rig.tb.simulator().run_until(TimePoint(3000.0));

  EXPECT_FALSE(rig.monitor.qos_at_risk());
  EXPECT_GE(rig.monitor.reconfigurations(), 1u);
  EXPECT_LT(rig.monitor.current_params().eta.seconds(), 0.2);
  EXPECT_LE(rig.monitor.relative_detection_bound().seconds(), 0.2 + 1e-9);
  EXPECT_DOUBLE_EQ(rig.tb.sender().eta().seconds(),
                   rig.monitor.current_params().eta.seconds());
}

TEST(AdaptiveMonitor, LatchedRiskClearsOnlyOnSuccessfulRound) {
  // Every latchable reason behaves the same way: raised immediately,
  // untouched by heartbeats alone, cleared only by a successful
  // reconfiguration round.  (kInfeasible and kEstimatesUnusable are
  // injected here — organically they need a network the estimator cannot
  // describe, e.g. total loss or non-finite moments.)
  using R = AdaptiveMonitor::RiskReason;
  for (const R reason :
       {R::kInfeasible, R::kEstimatesUnusable, R::kPostDisruption}) {
    Rig rig(0.01, 0.02, default_options(), 5032);
    rig.tb.simulator().run_until(TimePoint(120.0));
    ASSERT_FALSE(rig.monitor.qos_at_risk());

    rig.monitor.latch_risk(reason);
    EXPECT_TRUE(rig.monitor.qos_at_risk());
    EXPECT_EQ(rig.monitor.risk_reason(), reason);

    // Heartbeats alone must not clear it — only a successful round does.
    rig.tb.simulator().run_until(TimePoint(140.0));
    EXPECT_TRUE(rig.monitor.qos_at_risk());
    rig.tb.simulator().run_until(TimePoint(400.0));
    EXPECT_FALSE(rig.monitor.qos_at_risk());
    EXPECT_EQ(rig.monitor.risk_reason(), R::kNone);
  }

  Rig rig(0.01, 0.02, default_options(), 5032);
  EXPECT_THROW(rig.monitor.latch_risk(AdaptiveMonitor::RiskReason::kNone),
               std::invalid_argument);
}

TEST(AdaptiveMonitor, WarmRestartLatchHoldsUntilPostRestoreHeartbeat) {
  // A rehydrated service must not revalidate from its restored estimates
  // alone: rounds before the first post-restore heartbeat are no-ops, so
  // the kWarmRestart latch survives them.
  Rig rig(0.0, 0.02, default_options(), 5033);
  rig.tb.simulator().run_until(TimePoint(500.0));

  rig.tb.link().set_partitioned(true);
  rig.tb.simulator().run_until(TimePoint(505.0));
  rig.monitor.stop();
  const persist::MonitorSnapshot snap = rig.monitor.snapshot();
  rig.monitor.restore_from(snap, seconds(5.0));
  rig.monitor.activate();
  EXPECT_TRUE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(),
            AdaptiveMonitor::RiskReason::kWarmRestart);

  // A reconfiguration round fires during the blackout and must hold off.
  const std::size_t reconfigs = rig.monitor.reconfigurations();
  rig.tb.simulator().run_until(TimePoint(558.0));
  EXPECT_EQ(rig.monitor.risk_reason(),
            AdaptiveMonitor::RiskReason::kWarmRestart);
  EXPECT_EQ(rig.monitor.reconfigurations(), reconfigs);

  // Once live heartbeats confirm the schedule, a round clears the latch.
  rig.tb.link().set_partitioned(false);
  rig.tb.simulator().run_until(TimePoint(800.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  EXPECT_EQ(rig.monitor.risk_reason(), AdaptiveMonitor::RiskReason::kNone);
}

TEST(AdaptiveMonitor, SnapshotRestoreRoundTripsThroughTheWireFormat) {
  Rig rig(0.01, 0.02, default_options(), 5034);
  rig.tb.simulator().run_until(TimePoint(600.0));
  rig.monitor.stop();

  const persist::MonitorSnapshot snap = rig.monitor.snapshot();
  // Through the serialized form, as the supervisor persists it.
  const persist::MonitorSnapshot parsed =
      persist::from_string(persist::to_string(snap));
  rig.monitor.restore_from(parsed, seconds(0.0));
  rig.monitor.activate();

  // The rehydrated service runs the captured parameters and counters.
  EXPECT_DOUBLE_EQ(rig.monitor.current_params().eta.seconds(),
                   snap.detector.eta_s);
  EXPECT_EQ(rig.monitor.reconfigurations(), snap.reconfigurations);
  EXPECT_EQ(rig.monitor.epoch_resets(), snap.epoch_resets);
  // And a second snapshot reproduces the restored state structurally.
  const persist::MonitorSnapshot again = rig.monitor.snapshot();
  EXPECT_EQ(again.detector.window.size(), snap.detector.window.size());
  EXPECT_EQ(again.detector.epoch_seq, snap.detector.epoch_seq);
  EXPECT_EQ(again.risk_reason, "warm_restart");
}

TEST(AdaptiveMonitor, RestoreShiftsEstimatorsByCompletedIntervalsOnly) {
  // The downtime gap credits p with floor(gap / eta) sends: only intervals
  // that COMPLETED while the monitor was down. Round-to-nearest (the old
  // llround) credited a phantom heartbeat whenever the fractional part
  // passed 0.5, shifting the loss window past a message never due.
  Rig rig(0.01, 0.02, default_options(), 5040);
  rig.tb.simulator().run_until(TimePoint(600.0));
  rig.monitor.stop();

  const persist::MonitorSnapshot snap = rig.monitor.snapshot();
  const double eta = snap.detector.eta_s;
  const std::uint64_t base = snap.short_term.highest_seq;
  ASSERT_GT(base, 0u);

  // 2.6 intervals elapsed -> 2 heartbeats were due (llround said 3).
  rig.monitor.restore_from(snap, seconds(2.6 * eta));
  EXPECT_EQ(rig.monitor.snapshot().short_term.highest_seq, base + 2);

  // A ratio one ULP shy of an integer still counts it: a naked floor would
  // say 2 when 3 * eta seconds of downtime landed at 2.999... * eta.
  rig.monitor.restore_from(snap, seconds(std::nextafter(3.0 * eta, 0.0)));
  EXPECT_EQ(rig.monitor.snapshot().short_term.highest_seq, base + 3);
}

TEST(AdaptiveMonitor, AdoptParamsRenegotiatesRateBeforeActivation) {
  Rig rig(0.01, 0.02, default_options(), 5035);
  rig.tb.simulator().run_until(TimePoint(300.0));
  const core::NfdUParams target{seconds(2.5), seconds(3.0)};
  // Adopting into a running service is a precondition violation.
  EXPECT_THROW(rig.monitor.adopt_params(target), std::invalid_argument);

  rig.monitor.stop();
  rig.monitor.adopt_params(target);
  rig.monitor.activate();
  EXPECT_DOUBLE_EQ(rig.monitor.current_params().eta.seconds(), 2.5);
  EXPECT_DOUBLE_EQ(rig.monitor.current_params().alpha.seconds(), 3.0);
  // Sender and detector changed together (Eq. 6.3 stays normalized).
  EXPECT_DOUBLE_EQ(rig.tb.sender().eta().seconds(), 2.5);
}

TEST(AdaptiveMonitor, LifecycleContractStopThenActivateResumes) {
  Rig rig(0.01, 0.02, default_options(), 5036);
  rig.tb.simulator().run_until(TimePoint(500.0));
  // Double activation is a precondition violation.
  EXPECT_THROW(rig.monitor.activate(), std::invalid_argument);

  rig.monitor.stop();
  rig.monitor.stop();  // idempotent
  const std::size_t transitions = rig.log.size();
  rig.tb.simulator().run_until(TimePoint(520.0));
  EXPECT_EQ(rig.log.size(), transitions);

  rig.monitor.activate();
  rig.tb.simulator().run_until(TimePoint(1500.0));
  EXPECT_FALSE(rig.monitor.qos_at_risk());
  const auto rec = qos::replay(rig.log, TimePoint(600.0), TimePoint(1500.0));
  EXPECT_GT(rec.query_accuracy(), 0.9);

  // The reactivated detector is live, not a zombie: a real crash of p is
  // still detected within the relative bound (+ E(D) + slack).
  const TimePoint crash(1501.25);
  rig.tb.crash_p_at(crash);
  rig.tb.simulator().run_until(TimePoint(1600.0));
  EXPECT_EQ(rig.monitor.output(), Verdict::kSuspect);
  ASSERT_FALSE(rig.log.empty());
  EXPECT_EQ(rig.log.back().to, Verdict::kSuspect);
  EXPECT_LE((rig.log.back().at - crash).seconds(),
            rig.monitor.relative_detection_bound().seconds() + 0.02 + 0.5);
}

TEST(AdaptiveMonitor, RiskReasonWireNamesRoundTrip) {
  using R = AdaptiveMonitor::RiskReason;
  for (const R reason :
       {R::kNone, R::kInfeasible, R::kEstimatesUnusable, R::kSilence,
        R::kPostDisruption, R::kWarmRestart}) {
    const auto back = risk_reason_from_string(to_string(reason));
    ASSERT_TRUE(back.has_value()) << to_string(reason);
    EXPECT_EQ(*back, reason);
  }
  EXPECT_FALSE(risk_reason_from_string("lukewarm").has_value());
}

TEST(AdaptiveMonitor, StopQuiescesService) {
  Rig rig(0.01, 0.02, default_options(), 5009);
  rig.tb.simulator().run_until(TimePoint(500.0));
  rig.monitor.stop();
  const std::size_t reconfigs = rig.monitor.reconfigurations();
  const std::size_t transitions = rig.log.size();
  rig.tb.simulator().run_until(TimePoint(2000.0));
  EXPECT_EQ(rig.monitor.reconfigurations(), reconfigs);
  EXPECT_EQ(rig.log.size(), transitions);
}

}  // namespace
}  // namespace chenfd::service
