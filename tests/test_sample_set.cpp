// Unit tests for the SampleSet reservoir.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "stats/sample_set.hpp"

namespace chenfd::stats {
namespace {

TEST(SampleSet, EmptyBehaviour) {
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.moment(1)));
  EXPECT_TRUE(std::isnan(s.tail_probability(0.0)));
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
}

TEST(SampleSet, BasicStatistics) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_TRUE(s.complete());
}

TEST(SampleSet, Moments) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.moment(1), 2.0);
  EXPECT_DOUBLE_EQ(s.moment(2), (1.0 + 4.0 + 9.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.moment(3), (1.0 + 8.0 + 27.0) / 3.0);
  EXPECT_THROW((void)s.moment(0), std::invalid_argument);
}

TEST(SampleSet, TailProbability) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.tail_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.tail_probability(2.0), 0.5);   // strictly greater
  EXPECT_DOUBLE_EQ(s.tail_probability(4.0), 0.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
  EXPECT_THROW((void)s.quantile(1.5), std::invalid_argument);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
}

TEST(SampleSet, CapacityLimitsRetentionButNotStats) {
  SampleSet s(10);
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.samples().size(), 10u);
  EXPECT_FALSE(s.complete());
  // Online statistics still cover all 100 values.
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSet, MergeMatchesCombinedStream) {
  Rng rng(9001);
  SampleSet all;
  SampleSet shards[3];
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    all.add(x);
    shards[i % 3].add(x);
  }
  SampleSet merged = shards[0];
  merged.merge(shards[1]);
  merged.merge(shards[2]);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_TRUE(merged.complete());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  // With complete retention on both sides, quantiles over the merged set
  // are those of the combined stream (sorting removes order differences).
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_NEAR(merged.quantile(q), all.quantile(q), 1e-12) << "q=" << q;
  }
  EXPECT_NEAR(merged.moment(2), all.moment(2), 1e-9);
  EXPECT_NEAR(merged.tail_probability(5.0), all.tail_probability(5.0), 1e-12);
}

TEST(SampleSet, MergeRespectsCapacity) {
  SampleSet a(10);
  SampleSet b(10);
  for (int i = 0; i < 8; ++i) a.add(1.0);
  for (int i = 0; i < 8; ++i) b.add(2.0);
  a.merge(b);
  // Raw retention truncates at capacity (quantiles become approximate)...
  EXPECT_EQ(a.samples().size(), 10u);
  EXPECT_FALSE(a.complete());
  // ...but the online moments still cover every sample exactly.
  EXPECT_EQ(a.count(), 16u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(SampleSet, MergeWithEmptyIsIdentity) {
  SampleSet a;
  for (double x : {3.0, 1.0, 2.0}) a.add(x);
  SampleSet empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 2.0);

  SampleSet b;
  b.merge(a);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.quantile(1.0), 3.0);
}

TEST(SampleSet, MergeResortsForQuantiles) {
  SampleSet a;
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 5.0);  // forces a sort
  SampleSet b;
  b.add(1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);  // must re-sort after merge
}

TEST(SampleSet, QuantileAfterAddResorts) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);  // must re-sort after mutation
}

}  // namespace
}  // namespace chenfd::stats
