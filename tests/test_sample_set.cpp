// Unit tests for the SampleSet reservoir.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/sample_set.hpp"

namespace chenfd::stats {
namespace {

TEST(SampleSet, EmptyBehaviour) {
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.moment(1)));
  EXPECT_TRUE(std::isnan(s.tail_probability(0.0)));
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
}

TEST(SampleSet, BasicStatistics) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_TRUE(s.complete());
}

TEST(SampleSet, Moments) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.moment(1), 2.0);
  EXPECT_DOUBLE_EQ(s.moment(2), (1.0 + 4.0 + 9.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.moment(3), (1.0 + 8.0 + 27.0) / 3.0);
  EXPECT_THROW((void)s.moment(0), std::invalid_argument);
}

TEST(SampleSet, TailProbability) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.tail_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.tail_probability(2.0), 0.5);   // strictly greater
  EXPECT_DOUBLE_EQ(s.tail_probability(4.0), 0.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
  EXPECT_THROW((void)s.quantile(1.5), std::invalid_argument);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
}

TEST(SampleSet, CapacityLimitsRetentionButNotStats) {
  SampleSet s(10);
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.samples().size(), 10u);
  EXPECT_FALSE(s.complete());
  // Online statistics still cover all 100 values.
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSet, QuantileAfterAddResorts) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);  // must re-sort after mutation
}

}  // namespace
}  // namespace chenfd::stats
