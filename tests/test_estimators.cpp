// Tests for the network estimators (Sections 5.2, 6.2.2, 8.1.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "core/estimators.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"

namespace chenfd::core {
namespace {

void feed(NetworkEstimator& est, net::SeqNo seq, double sent, double recv) {
  est.on_heartbeat(seq, TimePoint(sent), TimePoint(recv));
}

TEST(NetworkEstimator, RequiresWindowOfTwo) {
  EXPECT_THROW(NetworkEstimator(1), std::invalid_argument);
}

TEST(NetworkEstimator, EmptyDefaults) {
  NetworkEstimator est(16);
  EXPECT_EQ(est.samples(), 0u);
  EXPECT_DOUBLE_EQ(est.loss_probability(), 0.0);
  EXPECT_DOUBLE_EQ(est.delay_mean(), 0.0);
  EXPECT_DOUBLE_EQ(est.delay_variance(), 0.0);
}

TEST(NetworkEstimator, DelayMeanAndVariance) {
  NetworkEstimator est(16);
  feed(est, 1, 1.0, 1.1);  // delay 0.1
  feed(est, 2, 2.0, 2.3);  // delay 0.3
  EXPECT_EQ(est.samples(), 2u);
  EXPECT_NEAR(est.delay_mean(), 0.2, 1e-12);
  EXPECT_NEAR(est.delay_variance(), 0.01, 1e-12);
}

TEST(NetworkEstimator, LossFromSequenceGaps) {
  NetworkEstimator est(16);
  // Receive 1, 2, 4, 5: the window spans 5 slots, 4 received -> loss 1/5.
  for (net::SeqNo s : {1u, 2u, 4u, 5u}) {
    feed(est, s, static_cast<double>(s), static_cast<double>(s) + 0.1);
  }
  EXPECT_NEAR(est.loss_probability(), 1.0 / 5.0, 1e-12);
}

TEST(NetworkEstimator, NoLossWhenContiguous) {
  NetworkEstimator est(16);
  for (net::SeqNo s = 1; s <= 10; ++s) {
    feed(est, s, static_cast<double>(s), static_cast<double>(s) + 0.1);
  }
  EXPECT_DOUBLE_EQ(est.loss_probability(), 0.0);
}

TEST(NetworkEstimator, WindowSlides) {
  NetworkEstimator est(4);
  for (net::SeqNo s = 1; s <= 10; ++s) {
    // Delays grow linearly; only the last 4 should matter.
    feed(est, s, static_cast<double>(s),
         static_cast<double>(s) + 0.1 * static_cast<double>(s));
  }
  EXPECT_EQ(est.samples(), 4u);
  // Last four delays: 0.7, 0.8, 0.9, 1.0.
  EXPECT_NEAR(est.delay_mean(), 0.85, 1e-12);
}

TEST(NetworkEstimator, SkewShiftsMeanButNotVariance) {
  // Section 6.2.2: with unsynchronized clocks, A - S = delay + skew;
  // the variance is skew-invariant.
  NetworkEstimator synced(16);
  NetworkEstimator skewed(16);
  Rng rng(5);
  dist::Exponential d(0.02);
  const double skew = 1234.5;
  double t = 0.0;
  for (net::SeqNo s = 1; s <= 16; ++s) {
    t += 1.0;
    const double delay = d.sample(rng);
    feed(synced, s, t, t + delay);
    skewed.on_heartbeat(s, TimePoint(t), TimePoint(t + delay + skew));
  }
  EXPECT_NEAR(skewed.delay_mean() - synced.delay_mean(), skew, 1e-9);
  EXPECT_NEAR(skewed.delay_variance(), synced.delay_variance(), 1e-9);
}

TEST(NetworkEstimator, IgnoresDuplicatesAndReordered) {
  NetworkEstimator est(16);
  feed(est, 2, 2.0, 2.1);
  feed(est, 2, 2.0, 2.2);  // duplicate
  feed(est, 1, 1.0, 2.3);  // out of order
  EXPECT_EQ(est.samples(), 1u);
}

TEST(NetworkEstimator, ConvergesToTrueParameters) {
  // Feed a long synthetic heartbeat stream and check p_L, E(D), V(D).
  NetworkEstimator est(2000);
  Rng rng(77);
  dist::LogNormal d = dist::LogNormal::with_moments(0.05, 0.001);
  const double p_loss = 0.05;
  for (net::SeqNo s = 1; s <= 4000; ++s) {
    if (rng.bernoulli(p_loss)) continue;  // lost
    const double sent = static_cast<double>(s);
    feed(est, s, sent, sent + d.sample(rng));
  }
  EXPECT_NEAR(est.loss_probability(), p_loss, 0.02);
  EXPECT_NEAR(est.delay_mean(), 0.05, 0.005);
  EXPECT_NEAR(est.delay_variance(), 0.001, 0.0004);
}

TEST(TwoComponentEstimator, RequiresShortBelowLong) {
  EXPECT_THROW(TwoComponentEstimator(16, 16), std::invalid_argument);
  EXPECT_THROW(TwoComponentEstimator(32, 16), std::invalid_argument);
}

TEST(TwoComponentEstimator, TakesConservativeMaximum) {
  TwoComponentEstimator est(4, 64);
  // 60 fast heartbeats, then 4 slow ones: the short window sees only the
  // slow regime, the long window mostly the fast one.
  for (net::SeqNo s = 1; s <= 60; ++s) {
    est.on_heartbeat(s, TimePoint(static_cast<double>(s)),
                     TimePoint(static_cast<double>(s) + 0.01));
  }
  for (net::SeqNo s = 61; s <= 64; ++s) {
    est.on_heartbeat(s, TimePoint(static_cast<double>(s)),
                     TimePoint(static_cast<double>(s) + 0.5));
  }
  EXPECT_NEAR(est.short_term().delay_mean(), 0.5, 1e-9);
  EXPECT_LT(est.long_term().delay_mean(), 0.1);
  // Combined estimate = the conservative (larger) one.
  EXPECT_DOUBLE_EQ(est.delay_mean(), est.short_term().delay_mean());
  EXPECT_DOUBLE_EQ(est.delay_variance(),
                   std::max(est.short_term().delay_variance(),
                            est.long_term().delay_variance()));
}

TEST(TwoComponentEstimator, ReactsToLossBurstQuickly) {
  TwoComponentEstimator est(8, 128);
  net::SeqNo s = 1;
  for (; s <= 100; ++s) {
    est.on_heartbeat(s, TimePoint(static_cast<double>(s)),
                     TimePoint(static_cast<double>(s) + 0.01));
  }
  // Burst: every other heartbeat of the next 40 is lost.
  for (; s <= 140; s += 2) {
    est.on_heartbeat(s, TimePoint(static_cast<double>(s)),
                     TimePoint(static_cast<double>(s) + 0.01));
  }
  EXPECT_GT(est.short_term().loss_probability(), 0.3);
  EXPECT_LT(est.long_term().loss_probability(), 0.25);
  EXPECT_DOUBLE_EQ(est.loss_probability(),
                   est.short_term().loss_probability());
}

}  // namespace
}  // namespace chenfd::core
