// Tests for the monotonic arena (common/arena.hpp) and the per-worker
// arena pool (runner/arena.hpp): alignment, block recycling, the warm
// no-heap-growth property the fast engines rely on, and pool reuse.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "core/fast_sim.hpp"
#include "dist/exponential.hpp"
#include "runner/arena.hpp"

namespace chenfd {
namespace {

TEST(MonotonicArena, RespectsAlignment) {
  MonotonicArena arena(1024);
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    // Throw the bump pointer off by one first so alignment has to work.
    (void)arena.allocate(1, 1);
    void* p = arena.allocate(32, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(MonotonicArena, AllocationsDoNotOverlap) {
  MonotonicArena arena(256);  // small blocks force several grows
  std::vector<std::byte*> ptrs;
  constexpr std::size_t kSize = 48;
  for (int i = 0; i < 64; ++i) {
    auto* p = static_cast<std::byte*>(arena.allocate(kSize, 8));
    ptrs.push_back(p);
    p[0] = std::byte{static_cast<unsigned char>(i)};  // touch the memory
    p[kSize - 1] = std::byte{static_cast<unsigned char>(i)};
  }
  for (std::size_t a = 0; a < ptrs.size(); ++a) {
    for (std::size_t b = a + 1; b < ptrs.size(); ++b) {
      const bool disjoint =
          ptrs[a] + kSize <= ptrs[b] || ptrs[b] + kSize <= ptrs[a];
      ASSERT_TRUE(disjoint) << a << " overlaps " << b;
    }
  }
}

TEST(MonotonicArena, OversizedRequestGetsDedicatedBlock) {
  MonotonicArena arena(128);
  void* p = arena.allocate(10'000, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.capacity_bytes(), 10'000u);
}

TEST(MonotonicArena, ResetRecyclesBlocksWithoutHeapGrowth) {
  MonotonicArena arena(512);
  for (int i = 0; i < 20; ++i) (void)arena.allocate(100, 8);
  const std::size_t warm_blocks = arena.block_count();
  ASSERT_GT(warm_blocks, 1u);  // the workload spilled into several blocks
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    for (int i = 0; i < 20; ++i) (void)arena.allocate(100, 8);
    EXPECT_EQ(arena.block_count(), warm_blocks) << "round " << round;
  }
}

TEST(MonotonicArena, ZeroByteAllocationsAreDistinct) {
  MonotonicArena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(MonotonicArena, RejectsBadAlignment) {
  MonotonicArena arena;
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 0), std::invalid_argument);
}

TEST(ArenaVector, GrowsInsideTheArena) {
  MonotonicArena arena;
  ArenaVector<double> v{ArenaAllocator<double>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i));
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[i], static_cast<double>(i));
  EXPECT_GE(arena.capacity_bytes(), 1000 * sizeof(double));
}

TEST(FastEngineOnArena, WarmRunsDoNotGrowTheArena) {
  // The property the whole subsystem exists for: after one run warmed the
  // arena, repeated runs recycle its blocks and never touch the global heap.
  dist::Exponential delay(0.02);
  const core::CompiledSampler sampler(delay);
  core::StopCriteria stop;
  stop.target_s_transitions = 50;
  stop.max_heartbeats = 200'000;
  MonotonicArena arena;

  Rng rng(1);
  const auto run_all = [&] {
    (void)core::fast_nfd_s_accuracy(
        core::NfdSParams{Duration(1.0), Duration(0.5)}, 0.01, sampler, rng,
        stop, &arena);
    (void)core::fast_nfd_e_accuracy(
        core::NfdEParams{Duration(1.0), Duration(1.0), 16}, 0.01, sampler,
        rng, stop, &arena);
    (void)core::fast_sfd_accuracy(core::SfdParams{Duration(1.5)},
                                  Duration(1.0), 0.01, sampler, rng, stop,
                                  &arena);
  };
  run_all();  // first pass sizes the arena for the whole engine mix
  const std::size_t warm = arena.block_count();
  ASSERT_GT(warm, 0u);
  for (int run = 0; run < 3; ++run) {
    arena.reset();
    run_all();
    EXPECT_EQ(arena.block_count(), warm) << "run " << run;
  }
}

TEST(ArenaPool, SequentialLeasesReuseOneArena) {
  runner::ArenaPool pool;
  for (int i = 0; i < 10; ++i) {
    runner::ArenaLease lease = pool.acquire();
    (void)lease.arena().allocate(1024, 8);
  }
  EXPECT_EQ(pool.arena_count(), 1u);
}

TEST(ArenaPool, ConcurrentLeasesGetDistinctArenas) {
  runner::ArenaPool pool;
  {
    runner::ArenaLease a = pool.acquire();
    runner::ArenaLease b = pool.acquire();
    EXPECT_NE(&a.arena(), &b.arena());
  }
  EXPECT_EQ(pool.arena_count(), 2u);
  // Both returned: the next two leases create nothing new.
  {
    runner::ArenaLease a = pool.acquire();
    runner::ArenaLease b = pool.acquire();
  }
  EXPECT_EQ(pool.arena_count(), 2u);
}

TEST(ArenaPool, LeasedArenaStartsEmptyButWarm) {
  runner::ArenaPool pool;
  std::size_t warm_blocks = 0;
  {
    runner::ArenaLease lease = pool.acquire();
    for (int i = 0; i < 30; ++i) (void)lease.arena().allocate(4096, 8);
    warm_blocks = lease.arena().block_count();
  }
  ASSERT_GT(warm_blocks, 0u);
  {
    // Re-leasing resets (content recycled) but keeps the backing blocks.
    runner::ArenaLease lease = pool.acquire();
    EXPECT_EQ(lease.arena().block_count(), warm_blocks);
    for (int i = 0; i < 30; ++i) (void)lease.arena().allocate(4096, 8);
    EXPECT_EQ(lease.arena().block_count(), warm_blocks);
  }
  EXPECT_EQ(pool.total_blocks(), warm_blocks);
}

}  // namespace
}  // namespace chenfd
