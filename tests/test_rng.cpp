// Unit tests for the xoshiro256++ generator and its helpers.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace chenfd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01OpenZeroNeverZero) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01_open_zero();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(4242);
  double acc = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / kN, 0.5, 0.005);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  constexpr int kN = 200000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.01)) ++hits;  // the paper's p_L
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.01, 0.002);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  // The child stream should not reproduce the parent stream.
  Rng parent2(11);
  (void)parent2();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent2()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(SplitMix64, KnownSequenceIsDistinct) {
  SplitMix64 sm(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace chenfd
