// Tests for the versioned, checksummed snapshot format (DESIGN.md
// section 9): bit-exact round trips, CRC and structural rejection,
// forward-version rejection, CRLF tolerance and line-numbered diagnostics.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "persist/file_store.hpp"
#include "persist/snapshot.hpp"
#include "persist/store.hpp"

namespace chenfd::persist {
namespace {

MonitorSnapshot reference_snapshot() {
  MonitorSnapshot snap;
  snap.taken_at_s = 1234.5678901234;
  snap.detector.eta_s = 1.0;
  snap.detector.alpha_s = 0.5;
  snap.detector.window_capacity = 8;
  snap.detector.epoch_seq = 10;
  snap.detector.max_seq = 25;
  // Exactly representable normalized times, so the serialized lines are
  // predictable text the structural-tampering tests can pattern-match.
  for (std::uint64_t i = 0; i < 6; ++i) {
    snap.detector.window.push_back(
        {1000.5 + 0.25 * static_cast<double>(i), 20 + i});
  }
  snap.short_term.capacity = 4;
  snap.short_term.highest_seq = 25;
  for (std::uint64_t i = 0; i < 4; ++i) {
    snap.short_term.obs.push_back(
        {22 + i, 0.02 + 0.001 * static_cast<double>(i)});
  }
  snap.long_term.capacity = 16;
  snap.long_term.highest_seq = 25;
  for (std::uint64_t i = 0; i < 12; ++i) {
    snap.long_term.obs.push_back(
        {14 + i, 0.019 + 0.0005 * static_cast<double>(i)});
  }
  snap.smoothed_loss = 0.05;
  snap.smoothed_variance = 0.0004;
  snap.qos_at_risk = true;
  snap.risk_reason = "warm_restart";
  snap.backoff = 2.0;
  snap.has_last_arrival = true;
  snap.last_arrival_s = 1234.0;
  snap.reconfigurations = 3;
  snap.epoch_resets = 1;
  snap.req_detection_rel_s = 1.5;
  snap.req_recurrence_s = 300.0;
  snap.req_duration_s = 60.0;
  snap.next_app_id = 4;
  snap.apps.push_back({1, 1.5, 300.0, 60.0});
  snap.apps.push_back({3, 2.0, 600.0, 30.0});
  return snap;
}

// Replaces the first occurrence of `from` in a serialized snapshot and
// recomputes nothing: the CRC line is left stale on purpose unless the
// caller patches it too.
std::string tamper(std::string bytes, const std::string& from,
                   const std::string& to) {
  const auto pos = bytes.find(from);
  EXPECT_NE(pos, std::string::npos) << "pattern not found: " << from;
  bytes.replace(pos, from.size(), to);
  return bytes;
}

// Re-signs tampered bytes so structural checks (not the CRC) are what
// rejects them: strips the trailing crc line and re-serializes through the
// writer's own checksum path by hand.
std::string resign(const std::string& bytes) {
  const auto crc_pos = bytes.rfind("crc ");
  EXPECT_NE(crc_pos, std::string::npos);
  const std::string body = bytes.substr(0, crc_pos);
  // Compute CRC-32 the same way the writer does (poly 0xEDB88320).
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : body) {
    crc ^= static_cast<unsigned char>(c);
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  crc ^= 0xFFFFFFFFu;
  static const char* hex = "0123456789abcdef";
  std::string line = "crc ";
  for (int shift = 28; shift >= 0; shift -= 4) {
    line.push_back(hex[(crc >> shift) & 0xF]);
  }
  line.push_back('\n');
  return body + line;
}

TEST(Snapshot, RoundTripIsBitExact) {
  const MonitorSnapshot snap = reference_snapshot();
  const std::string bytes = to_string(snap);
  const MonitorSnapshot parsed = from_string(bytes);
  EXPECT_EQ(to_string(parsed), bytes);
}

TEST(Snapshot, RoundTripPreservesEveryField) {
  const MonitorSnapshot snap = reference_snapshot();
  const MonitorSnapshot parsed = from_string(to_string(snap));
  EXPECT_DOUBLE_EQ(parsed.taken_at_s, snap.taken_at_s);
  EXPECT_DOUBLE_EQ(parsed.detector.eta_s, snap.detector.eta_s);
  EXPECT_DOUBLE_EQ(parsed.detector.alpha_s, snap.detector.alpha_s);
  EXPECT_EQ(parsed.detector.window_capacity, snap.detector.window_capacity);
  EXPECT_EQ(parsed.detector.epoch_seq, snap.detector.epoch_seq);
  EXPECT_EQ(parsed.detector.max_seq, snap.detector.max_seq);
  ASSERT_EQ(parsed.detector.window.size(), snap.detector.window.size());
  for (std::size_t i = 0; i < snap.detector.window.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.detector.window[i].normalized_s,
                     snap.detector.window[i].normalized_s);
    EXPECT_EQ(parsed.detector.window[i].seq, snap.detector.window[i].seq);
  }
  ASSERT_EQ(parsed.short_term.obs.size(), snap.short_term.obs.size());
  ASSERT_EQ(parsed.long_term.obs.size(), snap.long_term.obs.size());
  EXPECT_EQ(parsed.qos_at_risk, snap.qos_at_risk);
  EXPECT_EQ(parsed.risk_reason, snap.risk_reason);
  EXPECT_DOUBLE_EQ(parsed.backoff, snap.backoff);
  EXPECT_EQ(parsed.has_last_arrival, snap.has_last_arrival);
  EXPECT_DOUBLE_EQ(parsed.last_arrival_s, snap.last_arrival_s);
  EXPECT_EQ(parsed.reconfigurations, snap.reconfigurations);
  EXPECT_EQ(parsed.epoch_resets, snap.epoch_resets);
  EXPECT_EQ(parsed.next_app_id, snap.next_app_id);
  ASSERT_EQ(parsed.apps.size(), snap.apps.size());
  EXPECT_EQ(parsed.apps[1].id, snap.apps[1].id);
  EXPECT_DOUBLE_EQ(parsed.apps[1].mistake_recurrence_lower_s,
                   snap.apps[1].mistake_recurrence_lower_s);
}

TEST(Snapshot, EmptyWindowsAndNoLastArrivalRoundTrip) {
  MonitorSnapshot snap;
  snap.detector.eta_s = 2.0;
  snap.detector.alpha_s = 1.0;
  snap.detector.window_capacity = 4;
  snap.short_term.capacity = 4;
  snap.long_term.capacity = 16;
  snap.req_detection_rel_s = 3.0;
  snap.req_recurrence_s = 100.0;
  snap.req_duration_s = 10.0;
  const std::string bytes = to_string(snap);
  const MonitorSnapshot parsed = from_string(bytes);
  EXPECT_EQ(to_string(parsed), bytes);
  EXPECT_FALSE(parsed.has_last_arrival);
  EXPECT_TRUE(parsed.detector.window.empty());
  EXPECT_TRUE(parsed.apps.empty());
}

TEST(Snapshot, CorruptedByteIsRejectedByChecksum) {
  std::string bytes = to_string(reference_snapshot());
  // Flip a digit inside a payload line; the structure stays plausible but
  // the CRC no longer matches.
  bytes = tamper(bytes, "smoothed 0.05", "smoothed 0.15");
  try {
    (void)from_string(bytes);
    FAIL() << "corrupted snapshot parsed";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("crc"), std::string::npos);
  }
}

TEST(Snapshot, ForwardVersionIsRejectedNotHalfParsed) {
  std::string bytes = to_string(reference_snapshot());
  bytes = resign(tamper(bytes, "chenfd-snapshot v1", "chenfd-snapshot v2"));
  try {
    (void)from_string(bytes);
    FAIL() << "future-version snapshot parsed";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.line(), 1u);
  }
}

TEST(Snapshot, TruncatedStreamIsRejected) {
  const std::string bytes = to_string(reference_snapshot());
  // Missing CRC line entirely (torn write).
  const auto crc_pos = bytes.rfind("crc ");
  ASSERT_NE(crc_pos, std::string::npos);
  EXPECT_THROW((void)from_string(bytes.substr(0, crc_pos)), SnapshotError);
  // Torn mid-record.
  EXPECT_THROW((void)from_string(bytes.substr(0, bytes.size() / 2)),
               SnapshotError);
  EXPECT_THROW((void)from_string(""), SnapshotError);
}

TEST(Snapshot, MalformedCrcLineIsRejected) {
  std::string bytes = to_string(reference_snapshot());
  // Uppercase hex is not the writer's alphabet; accepting it would let
  // case-flipping bit errors alias the same checksum value.
  const auto crc_pos = bytes.rfind("crc ");
  ASSERT_NE(crc_pos, std::string::npos);
  for (std::size_t i = crc_pos + 4; i < bytes.size() - 1; ++i) {
    if (bytes[i] >= 'a' && bytes[i] <= 'f') {
      std::string upper = bytes;
      upper[i] = static_cast<char>(bytes[i] - 'a' + 'A');
      EXPECT_THROW((void)from_string(upper), SnapshotError);
      break;
    }
  }
  // Trailing garbage after the CRC line.
  EXPECT_THROW((void)from_string(bytes + "x"), SnapshotError);
}

TEST(Snapshot, StructuralViolationsCarryLineNumbers) {
  const std::string good = to_string(reference_snapshot());
  // Non-increasing detector window sequence numbers.
  {
    std::string bad = resign(tamper(good, "dw 1000.75 21", "dw 1000.75 20"));
    try {
      (void)from_string(bad);
      FAIL() << "non-increasing window seq parsed";
    } catch (const SnapshotError& e) {
      EXPECT_GT(e.line(), 0u);
    }
  }
  // Unknown risk-reason word.
  {
    std::string bad = resign(tamper(good, "warm_restart", "lukewarm"));
    EXPECT_THROW((void)from_string(bad), SnapshotError);
  }
  // Declared count disagrees with the following lines.
  {
    std::string bad = resign(tamper(good, "detector 10 25 6",
                                    "detector 10 25 7"));
    EXPECT_THROW((void)from_string(bad), SnapshotError);
  }
  // App id at or above next-id.
  {
    std::string bad = resign(tamper(good, "app 3 ", "app 9 "));
    EXPECT_THROW((void)from_string(bad), SnapshotError);
  }
}

TEST(Snapshot, CrlfInputParsesToTheSameSnapshot) {
  const std::string bytes = to_string(reference_snapshot());
  std::string crlf;
  for (const char c : bytes) {
    if (c == '\n') crlf.push_back('\r');
    crlf.push_back(c);
  }
  const MonitorSnapshot parsed = from_string(crlf);
  EXPECT_EQ(to_string(parsed), bytes);
}

TEST(Snapshot, StreamInterfaceMatchesStringInterface) {
  const MonitorSnapshot snap = reference_snapshot();
  std::ostringstream os;
  write_snapshot(os, snap);
  EXPECT_EQ(os.str(), to_string(snap));
  std::istringstream is(os.str());
  EXPECT_EQ(to_string(read_snapshot(is)), os.str());
}

MonitorSnapshot fleet_snapshot() {
  MonitorSnapshot snap = reference_snapshot();
  snap.has_fleet = true;
  snap.fleet.processes = 7;
  snap.fleet.shards.push_back(FleetShardState{0, 4, 2, 31});
  snap.fleet.shards.push_back(FleetShardState{1, 3, 0, 30});
  return snap;
}

TEST(Snapshot, FleetSectionRoundTripsBitExact) {
  const MonitorSnapshot snap = fleet_snapshot();
  const std::string bytes = to_string(snap);
  const MonitorSnapshot parsed = from_string(bytes);
  EXPECT_EQ(to_string(parsed), bytes);
  ASSERT_TRUE(parsed.has_fleet);
  EXPECT_EQ(parsed.fleet.processes, 7u);
  ASSERT_EQ(parsed.fleet.shards.size(), 2u);
  EXPECT_EQ(parsed.fleet.shards[0].max_incarnation, 2u);
  EXPECT_EQ(parsed.fleet.shards[1].max_seq, 30u);
}

TEST(Snapshot, FleetSectionIsOptional) {
  // A fleet-less snapshot (every snapshot written before the section
  // existed, or a supervisor with no fleet hooks) still parses, with
  // has_fleet false.
  const MonitorSnapshot parsed = from_string(to_string(reference_snapshot()));
  EXPECT_FALSE(parsed.has_fleet);
  EXPECT_TRUE(parsed.fleet.shards.empty());
}

TEST(Snapshot, FleetAndElectionStayIndependent) {
  // Either optional section may appear without the other; order in the
  // stream is election first, fleet second.
  MonitorSnapshot snap = fleet_snapshot();
  snap.has_election = true;
  snap.election.self = 1;
  const std::string bytes = to_string(snap);
  EXPECT_LT(bytes.find("election"), bytes.find("fleet"));
  const MonitorSnapshot parsed = from_string(bytes);
  EXPECT_TRUE(parsed.has_election);
  ASSERT_TRUE(parsed.has_fleet);
  EXPECT_EQ(parsed.fleet.processes, 7u);
}

TEST(Snapshot, FleetShardIdOutOfOrderIsRejected) {
  const std::string bytes = resign(
      tamper(to_string(fleet_snapshot()), "fshard 1 3", "fshard 2 3"));
  EXPECT_THROW((void)from_string(bytes), SnapshotError);
}

TEST(Snapshot, FleetShardCountOutsideProcessesIsRejected) {
  const std::string bytes = resign(
      tamper(to_string(fleet_snapshot()), "fleet 7 2", "fleet 1 2"));
  EXPECT_THROW((void)from_string(bytes), SnapshotError);
}

TEST(Snapshot, FleetShardSumMismatchIsRejected) {
  const std::string bytes = resign(
      tamper(to_string(fleet_snapshot()), "fshard 0 4", "fshard 0 5"));
  EXPECT_THROW((void)from_string(bytes), SnapshotError);
}

TEST(Snapshot, PayloadAfterFleetSectionIsRejected) {
  // Forward-compatibility guard: a future section appended after the fleet
  // block must reject cleanly, not half-parse.
  std::string bytes = to_string(fleet_snapshot());
  const auto crc_pos = bytes.rfind("crc ");
  ASSERT_NE(crc_pos, std::string::npos);
  bytes.insert(crc_pos, "futuresection 1 2 3\n");
  EXPECT_THROW((void)from_string(resign(bytes)), SnapshotError);
}

TEST(SnapshotStore, MemoryStoreLifecycle) {
  MemorySnapshotStore store;
  EXPECT_FALSE(store.load().has_value());
  store.save("v1", TimePoint(10.0));
  ASSERT_TRUE(store.load().has_value());
  EXPECT_EQ(store.load()->bytes, "v1");
  EXPECT_DOUBLE_EQ(store.load()->saved_at.seconds(), 10.0);
  store.save("v2", TimePoint(20.0));  // atomic replace, stamp included
  EXPECT_EQ(store.load()->bytes, "v2");
  EXPECT_DOUBLE_EQ(store.load()->saved_at.seconds(), 20.0);
  store.clear();
  EXPECT_FALSE(store.load().has_value());
}

TEST(SnapshotStore, FileStoreRoundTripsBytesAndStamp) {
  const std::string path = "test_persist_file_store.dat";
  FileSnapshotStore store(path);
  store.clear();  // clean slate even if a previous run crashed
  EXPECT_FALSE(store.load().has_value());

  const std::string payload = std::string("binary\0payload\nline2", 20);
  store.save(payload, TimePoint(1234.5));
  auto stored = store.load();
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->bytes, payload);  // bit-exact, embedded NUL included
  EXPECT_DOUBLE_EQ(stored->saved_at.seconds(), 1234.5);

  // Atomic replace: a second save fully supersedes the first.
  store.save("v2", TimePoint(2000.25));
  stored = store.load();
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->bytes, "v2");
  EXPECT_DOUBLE_EQ(stored->saved_at.seconds(), 2000.25);

  // A second store on the same path sees the same snapshot — that is how
  // a restarted daemon measures the previous incarnation's snapshot age.
  FileSnapshotStore reopened(path);
  ASSERT_TRUE(reopened.load().has_value());
  EXPECT_EQ(reopened.load()->bytes, "v2");

  store.clear();
  EXPECT_FALSE(store.load().has_value());
  store.clear();  // idempotent on a missing file
}

TEST(SnapshotStore, FileStoreRejectsAlienFilesWithoutThrowing) {
  const std::string path = "test_persist_file_store_alien.dat";
  const std::string aliens[] = {
      "",                                     // empty file
      "chenfd-store v1 saved_at",             // header cut before the stamp
      "chenfd-store v1 saved_at junk\nx",     // unparsable stamp
      "chenfd-store v1 saved_at 1 extra\nx",  // trailing junk after stamp
      "some other file format\npayload",      // different file entirely
  };
  for (const std::string& alien : aliens) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << alien;
    }
    FileSnapshotStore store(path);
    EXPECT_FALSE(store.load().has_value()) << "accepted: " << alien;
    store.clear();
  }
}

}  // namespace
}  // namespace chenfd::persist
