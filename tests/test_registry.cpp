// Tests for the multi-application QoS requirement registries.

#include <gtest/gtest.h>

#include "service/registry.hpp"

namespace chenfd::service {
namespace {

qos::Requirements req(double td, double tmr, double tm) {
  return qos::Requirements{seconds(td), seconds(tmr), seconds(tm)};
}

TEST(RequirementRegistry, EmptyHasNoMerge) {
  RequirementRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.merged().has_value());
}

TEST(RequirementRegistry, SingleAppPassesThrough) {
  RequirementRegistry reg;
  reg.add(req(30.0, 1000.0, 60.0));
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(30.0));
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(1000.0));
  EXPECT_EQ(m->mistake_duration_upper, seconds(60.0));
}

TEST(RequirementRegistry, MergesTightestBounds) {
  RequirementRegistry reg;
  reg.add(req(30.0, 1000.0, 60.0));   // slow detection, lax recurrence
  reg.add(req(10.0, 5000.0, 120.0));  // fast detection, strict recurrence
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(10.0));       // min
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(5000.0));  // max
  EXPECT_EQ(m->mistake_duration_upper, seconds(60.0));      // min
}

TEST(RequirementRegistry, RemoveRelaxesMerge) {
  RequirementRegistry reg;
  const AppId strict = reg.add(req(10.0, 5000.0, 30.0));
  reg.add(req(30.0, 1000.0, 60.0));
  ASSERT_TRUE(reg.remove(strict));
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(30.0));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RequirementRegistry, RemoveUnknownFails) {
  RequirementRegistry reg;
  EXPECT_FALSE(reg.remove(42));
}

TEST(RequirementRegistry, HandlesManyApps) {
  RequirementRegistry reg;
  for (int i = 1; i <= 50; ++i) {
    reg.add(req(10.0 + i, 100.0 * i, 5.0 + i));
  }
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(11.0));
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(5000.0));
  EXPECT_EQ(m->mistake_duration_upper, seconds(6.0));
}

TEST(RequirementRegistry, RejectsInvalid) {
  RequirementRegistry reg;
  EXPECT_THROW(reg.add(req(0.0, 1.0, 1.0)), std::invalid_argument);
}

TEST(RelativeRequirementRegistry, MergesTightestBounds) {
  RelativeRequirementRegistry reg;
  reg.add(core::RelativeRequirements{seconds(30.0), seconds(1000.0),
                                     seconds(60.0)});
  reg.add(core::RelativeRequirements{seconds(12.0), seconds(9000.0),
                                     seconds(45.0)});
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper_rel, seconds(12.0));
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(9000.0));
  EXPECT_EQ(m->mistake_duration_upper, seconds(45.0));
}

TEST(RelativeRequirementRegistry, AddRemoveLifecycle) {
  RelativeRequirementRegistry reg;
  const AppId a = reg.add(
      core::RelativeRequirements{seconds(5.0), seconds(100.0), seconds(2.0)});
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.remove(a));
  EXPECT_FALSE(reg.remove(a));
  EXPECT_FALSE(reg.merged().has_value());
}

TEST(Registries, MergedRequirementSatisfiesEveryApp) {
  // Property: any detector meeting the merged requirement meets each
  // app's individual requirement.
  RequirementRegistry reg;
  std::vector<qos::Requirements> apps = {req(30.0, 1000.0, 60.0),
                                         req(20.0, 3000.0, 10.0),
                                         req(25.0, 500.0, 90.0)};
  for (const auto& a : apps) reg.add(a);
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  qos::Figures f;
  f.detection_time_bound = m->detection_time_upper;
  f.mistake_recurrence_mean = m->mistake_recurrence_lower;
  f.mistake_duration_mean = m->mistake_duration_upper;
  for (const auto& a : apps) {
    EXPECT_TRUE(f.satisfies(a));
  }
}

}  // namespace
}  // namespace chenfd::service
