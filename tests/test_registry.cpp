// Tests for the multi-application QoS requirement registries.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "service/registry.hpp"

namespace chenfd::service {
namespace {

qos::Requirements req(double td, double tmr, double tm) {
  return qos::Requirements{seconds(td), seconds(tmr), seconds(tm)};
}

TEST(RequirementRegistry, EmptyHasNoMerge) {
  RequirementRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.merged().has_value());
}

TEST(RequirementRegistry, SingleAppPassesThrough) {
  RequirementRegistry reg;
  reg.add(req(30.0, 1000.0, 60.0));
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(30.0));
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(1000.0));
  EXPECT_EQ(m->mistake_duration_upper, seconds(60.0));
}

TEST(RequirementRegistry, MergesTightestBounds) {
  RequirementRegistry reg;
  reg.add(req(30.0, 1000.0, 60.0));   // slow detection, lax recurrence
  reg.add(req(10.0, 5000.0, 120.0));  // fast detection, strict recurrence
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(10.0));       // min
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(5000.0));  // max
  EXPECT_EQ(m->mistake_duration_upper, seconds(60.0));      // min
}

TEST(RequirementRegistry, RemoveRelaxesMerge) {
  RequirementRegistry reg;
  const AppId strict = reg.add(req(10.0, 5000.0, 30.0));
  reg.add(req(30.0, 1000.0, 60.0));
  ASSERT_TRUE(reg.remove(strict));
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(30.0));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RequirementRegistry, RemoveUnknownFails) {
  RequirementRegistry reg;
  EXPECT_FALSE(reg.remove(42));
}

TEST(RequirementRegistry, HandlesManyApps) {
  RequirementRegistry reg;
  for (int i = 1; i <= 50; ++i) {
    reg.add(req(10.0 + i, 100.0 * i, 5.0 + i));
  }
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(11.0));
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(5000.0));
  EXPECT_EQ(m->mistake_duration_upper, seconds(6.0));
}

TEST(RequirementRegistry, RejectsInvalid) {
  RequirementRegistry reg;
  EXPECT_THROW(reg.add(req(0.0, 1.0, 1.0)), std::invalid_argument);
}

TEST(RelativeRequirementRegistry, MergesTightestBounds) {
  RelativeRequirementRegistry reg;
  reg.add(core::RelativeRequirements{seconds(30.0), seconds(1000.0),
                                     seconds(60.0)});
  reg.add(core::RelativeRequirements{seconds(12.0), seconds(9000.0),
                                     seconds(45.0)});
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper_rel, seconds(12.0));
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(9000.0));
  EXPECT_EQ(m->mistake_duration_upper, seconds(45.0));
}

TEST(RelativeRequirementRegistry, AddRemoveLifecycle) {
  RelativeRequirementRegistry reg;
  const AppId a = reg.add(
      core::RelativeRequirements{seconds(5.0), seconds(100.0), seconds(2.0)});
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.remove(a));
  EXPECT_FALSE(reg.remove(a));
  EXPECT_FALSE(reg.merged().has_value());
}

TEST(RequirementRegistry, UpdateRenegotiatesInPlace) {
  RequirementRegistry reg;
  const AppId a = reg.add(req(30.0, 1000.0, 60.0));
  reg.add(req(25.0, 2000.0, 50.0));
  ASSERT_TRUE(reg.update(a, req(10.0, 5000.0, 40.0)));
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->detection_time_upper, seconds(10.0));
  EXPECT_EQ(m->mistake_recurrence_lower, seconds(5000.0));
  EXPECT_EQ(m->mistake_duration_upper, seconds(40.0));
  EXPECT_EQ(reg.size(), 2u);  // update is not an add
}

TEST(RequirementRegistry, UpdateUnknownFailsAndInvalidThrows) {
  RequirementRegistry reg;
  const AppId a = reg.add(req(30.0, 1000.0, 60.0));
  EXPECT_FALSE(reg.update(a + 99, req(10.0, 5000.0, 40.0)));
  EXPECT_THROW(reg.update(a, req(0.0, 1.0, 1.0)), std::invalid_argument);
  // The failed update left the entry untouched.
  EXPECT_EQ(reg.merged()->detection_time_upper, seconds(30.0));
}

TEST(RequirementRegistry, EveryMutationNotifiesTheMergedListener) {
  RequirementRegistry reg;
  std::vector<std::optional<qos::Requirements>> seen;
  reg.set_merged_listener(
      [&seen](const std::optional<qos::Requirements>& m) {
        seen.push_back(m);
      });

  const AppId a = reg.add(req(30.0, 1000.0, 60.0));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen.back()->detection_time_upper, seconds(30.0));

  reg.update(a, req(12.0, 2000.0, 30.0));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.back()->detection_time_upper, seconds(12.0));

  reg.remove(a);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_FALSE(seen.back().has_value());  // last app gone

  // Failed mutations do not notify.
  EXPECT_FALSE(reg.remove(a));
  EXPECT_FALSE(reg.update(a, req(1.0, 1.0, 1.0)));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RelativeRequirementRegistry, UpdateAndListenerMirrorTheAbsoluteOne) {
  RelativeRequirementRegistry reg;
  std::size_t notifications = 0;
  std::optional<core::RelativeRequirements> last;
  reg.set_merged_listener(
      [&](const std::optional<core::RelativeRequirements>& m) {
        ++notifications;
        last = m;
      });
  const AppId a = reg.add(
      core::RelativeRequirements{seconds(5.0), seconds(100.0), seconds(2.0)});
  ASSERT_TRUE(reg.update(a, core::RelativeRequirements{
                                seconds(3.0), seconds(200.0), seconds(1.0)}));
  EXPECT_FALSE(reg.update(a + 1, core::RelativeRequirements{
                                     seconds(3.0), seconds(200.0),
                                     seconds(1.0)}));
  EXPECT_EQ(notifications, 2u);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->detection_time_upper_rel, seconds(3.0));
}

TEST(RelativeRequirementRegistry, RestoreReplacesContentsWithoutNotifying) {
  RelativeRequirementRegistry reg;
  std::size_t notifications = 0;
  reg.set_merged_listener(
      [&](const std::optional<core::RelativeRequirements>&) {
        ++notifications;
      });
  reg.add(
      core::RelativeRequirements{seconds(5.0), seconds(100.0), seconds(2.0)});
  ASSERT_EQ(notifications, 1u);

  std::map<AppId, core::RelativeRequirements> entries;
  entries.emplace(2, core::RelativeRequirements{seconds(6.0), seconds(300.0),
                                                seconds(3.0)});
  entries.emplace(5, core::RelativeRequirements{seconds(9.0), seconds(150.0),
                                                seconds(4.0)});
  reg.restore(7, entries);
  // The restore path configures the monitor from the snapshot directly, so
  // the listener stays quiet.
  EXPECT_EQ(notifications, 1u);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.next_id(), 7u);
  EXPECT_EQ(reg.entries().count(5), 1u);
  // Restored handles stay live and new ids continue past next_id.
  EXPECT_TRUE(reg.remove(2));
  const AppId fresh = reg.add(
      core::RelativeRequirements{seconds(4.0), seconds(500.0), seconds(2.0)});
  EXPECT_EQ(fresh, 7u);

  // Handles at or above next_id are a contract violation.
  std::map<AppId, core::RelativeRequirements> bad;
  bad.emplace(9, core::RelativeRequirements{seconds(6.0), seconds(300.0),
                                            seconds(3.0)});
  EXPECT_THROW(reg.restore(9, bad), std::invalid_argument);
}

TEST(Registries, MergedRequirementSatisfiesEveryApp) {
  // Property: any detector meeting the merged requirement meets each
  // app's individual requirement.
  RequirementRegistry reg;
  std::vector<qos::Requirements> apps = {req(30.0, 1000.0, 60.0),
                                         req(20.0, 3000.0, 10.0),
                                         req(25.0, 500.0, 90.0)};
  for (const auto& a : apps) reg.add(a);
  const auto m = reg.merged();
  ASSERT_TRUE(m.has_value());
  qos::Figures f;
  f.detection_time_bound = m->detection_time_upper;
  f.mistake_recurrence_mean = m->mistake_recurrence_lower;
  f.mistake_duration_mean = m->mistake_duration_upper;
  for (const auto& a : apps) {
    EXPECT_TRUE(f.satisfies(a));
  }
}

}  // namespace
}  // namespace chenfd::service
