// Unit tests for the QoS recorder, including the paper's Fig. 2 / Fig. 3
// illustrations (accuracy metrics are not redundant).

#include <gtest/gtest.h>

#include <stdexcept>

#include "qos/recorder.hpp"

namespace chenfd::qos {
namespace {

using chenfd::TimePoint;
using chenfd::Verdict;

TEST(Recorder, SimpleAlternation) {
  Recorder rec(TimePoint(0.0), Verdict::kTrust);
  rec.on_transition(TimePoint(10.0), Verdict::kSuspect);
  rec.on_transition(TimePoint(12.0), Verdict::kTrust);
  rec.on_transition(TimePoint(20.0), Verdict::kSuspect);
  rec.on_transition(TimePoint(21.0), Verdict::kTrust);
  rec.finish(TimePoint(30.0));

  EXPECT_EQ(rec.s_transitions(), 2u);
  EXPECT_EQ(rec.t_transitions(), 2u);
  ASSERT_EQ(rec.mistake_recurrence().count(), 1u);
  EXPECT_DOUBLE_EQ(rec.mistake_recurrence().mean(), 10.0);
  ASSERT_EQ(rec.mistake_duration().count(), 2u);
  EXPECT_DOUBLE_EQ(rec.mistake_duration().mean(), 1.5);
  ASSERT_EQ(rec.good_period().count(), 1u);
  EXPECT_DOUBLE_EQ(rec.good_period().mean(), 8.0);
  // Trust time: [0,10) + [12,20) + [21,30) = 10 + 8 + 9 = 27 of 30.
  EXPECT_DOUBLE_EQ(rec.query_accuracy(), 27.0 / 30.0);
  EXPECT_DOUBLE_EQ(rec.mistake_rate(), 2.0 / 30.0);
}

TEST(Recorder, SampleIdentityTgEqualsTmrMinusTm) {
  // Theorem 1 part 1 holds per consecutive sample triple.
  Recorder rec(TimePoint(0.0), Verdict::kSuspect);
  rec.on_transition(TimePoint(1.0), Verdict::kTrust);
  rec.on_transition(TimePoint(5.0), Verdict::kSuspect);
  rec.on_transition(TimePoint(7.0), Verdict::kTrust);
  rec.on_transition(TimePoint(15.0), Verdict::kSuspect);
  rec.finish(TimePoint(16.0));
  ASSERT_EQ(rec.mistake_recurrence().count(), 1u);
  ASSERT_EQ(rec.good_period().count(), 2u);
  // The opening suspicion began before the window, so the first complete
  // mistake duration is the S@5 -> T@7 one.
  ASSERT_EQ(rec.mistake_duration().count(), 1u);
  // T_MR = 10 (5 -> 15), T_M = 2 (5 -> 7), T_G = 8 (7 -> 15).
  EXPECT_DOUBLE_EQ(rec.mistake_recurrence().samples()[0], 10.0);
  EXPECT_DOUBLE_EQ(rec.mistake_duration().samples()[0], 2.0);
  EXPECT_DOUBLE_EQ(rec.good_period().samples()[1], 8.0);
  EXPECT_DOUBLE_EQ(
      rec.mistake_recurrence().samples()[0],
      rec.mistake_duration().samples()[0] + rec.good_period().samples()[1]);
}

TEST(Recorder, IgnoresNoOpTransitions) {
  Recorder rec(TimePoint(0.0), Verdict::kTrust);
  rec.on_transition(TimePoint(1.0), Verdict::kTrust);  // no-op
  rec.on_transition(TimePoint(2.0), Verdict::kSuspect);
  rec.on_transition(TimePoint(2.5), Verdict::kSuspect);  // no-op
  rec.finish(TimePoint(4.0));
  EXPECT_EQ(rec.s_transitions(), 1u);
  EXPECT_DOUBLE_EQ(rec.query_accuracy(), 0.5);
}

TEST(Recorder, RejectsTimeTravel) {
  Recorder rec(TimePoint(10.0), Verdict::kTrust);
  rec.on_transition(TimePoint(20.0), Verdict::kSuspect);
  EXPECT_THROW(rec.on_transition(TimePoint(19.0), Verdict::kTrust),
               std::invalid_argument);
  EXPECT_THROW(rec.finish(TimePoint(19.0)), std::invalid_argument);
}

TEST(Recorder, RejectsUseAfterFinish) {
  Recorder rec(TimePoint(0.0), Verdict::kTrust);
  rec.finish(TimePoint(1.0));
  EXPECT_THROW(rec.on_transition(TimePoint(2.0), Verdict::kSuspect),
               std::invalid_argument);
  EXPECT_THROW(rec.finish(TimePoint(2.0)), std::invalid_argument);
}

TEST(Recorder, MetricsRequireFinish) {
  Recorder rec(TimePoint(0.0), Verdict::kTrust);
  EXPECT_THROW((void)rec.query_accuracy(), std::logic_error);
  EXPECT_THROW((void)rec.elapsed(), std::logic_error);
}

TEST(Recorder, IncompleteBoundaryIntervalsAreDiscarded) {
  // The first S-transition cannot produce a T_MR sample, and the trailing
  // open mistake cannot produce a T_M sample.
  Recorder rec(TimePoint(0.0), Verdict::kTrust);
  rec.on_transition(TimePoint(5.0), Verdict::kSuspect);
  rec.finish(TimePoint(10.0));
  EXPECT_EQ(rec.mistake_recurrence().count(), 0u);
  EXPECT_EQ(rec.mistake_duration().count(), 0u);
  EXPECT_EQ(rec.good_period().count(), 0u);
  EXPECT_EQ(rec.s_transitions(), 1u);
}

// ----- Fig. 2: same query accuracy probability, different mistake rates ---

TEST(Recorder, Fig2SamePaDifferentMistakeRate) {
  // FD_1: one 4-long mistake every 16 time units.
  Recorder fd1(TimePoint(0.0), Verdict::kTrust);
  for (int cycle = 0; cycle < 100; ++cycle) {
    const double base = 16.0 * cycle;
    fd1.on_transition(TimePoint(base + 12.0), Verdict::kSuspect);
    fd1.on_transition(TimePoint(base + 16.0), Verdict::kTrust);
  }
  fd1.finish(TimePoint(1600.0));

  // FD_2: four 1-long mistakes every 16 time units.
  Recorder fd2(TimePoint(0.0), Verdict::kTrust);
  for (int cycle = 0; cycle < 100; ++cycle) {
    const double base = 16.0 * cycle;
    for (int j = 0; j < 4; ++j) {
      fd2.on_transition(TimePoint(base + 4.0 * j + 3.0), Verdict::kSuspect);
      fd2.on_transition(TimePoint(base + 4.0 * j + 4.0), Verdict::kTrust);
    }
  }
  fd2.finish(TimePoint(1600.0));

  EXPECT_DOUBLE_EQ(fd1.query_accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(fd2.query_accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(fd2.mistake_rate(), 4.0 * fd1.mistake_rate());
}

// ----- Fig. 3: same mistake rate, different query accuracy probabilities --

TEST(Recorder, Fig3SameRateDifferentPa) {
  // Both make one mistake every 16 units; FD_1's lasts 4, FD_2's lasts 8.
  Recorder fd1(TimePoint(0.0), Verdict::kTrust);
  Recorder fd2(TimePoint(0.0), Verdict::kTrust);
  for (int cycle = 0; cycle < 100; ++cycle) {
    const double base = 16.0 * cycle;
    fd1.on_transition(TimePoint(base + 12.0), Verdict::kSuspect);
    fd1.on_transition(TimePoint(base + 16.0), Verdict::kTrust);
    fd2.on_transition(TimePoint(base + 8.0), Verdict::kSuspect);
    fd2.on_transition(TimePoint(base + 16.0), Verdict::kTrust);
  }
  fd1.finish(TimePoint(1600.0));
  fd2.finish(TimePoint(1600.0));

  EXPECT_DOUBLE_EQ(fd1.mistake_rate(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(fd2.mistake_rate(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(fd1.query_accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(fd2.query_accuracy(), 0.50);
}

TEST(Recorder, ForwardGoodPeriodDirectIntegration) {
  // Good periods of 2 and 6: E(T_FG) = (2^2 + 6^2) / (2 * (2 + 6)) = 2.5,
  // larger than E(T_G)/2 = 2 — the waiting-time paradox.
  Recorder rec(TimePoint(0.0), Verdict::kSuspect);
  rec.on_transition(TimePoint(1.0), Verdict::kTrust);
  rec.on_transition(TimePoint(3.0), Verdict::kSuspect);   // T_G = 2
  rec.on_transition(TimePoint(4.0), Verdict::kTrust);
  rec.on_transition(TimePoint(10.0), Verdict::kSuspect);  // T_G = 6
  rec.finish(TimePoint(11.0));
  EXPECT_DOUBLE_EQ(rec.forward_good_period_mean_direct(), 2.5);
  EXPECT_GT(rec.forward_good_period_mean_direct(),
            rec.good_period().mean() / 2.0);
}

TEST(Recorder, TransitionAtWindowStartCounts) {
  Recorder rec(TimePoint(5.0), Verdict::kTrust);
  rec.on_transition(TimePoint(5.0), Verdict::kSuspect);
  rec.finish(TimePoint(10.0));
  EXPECT_EQ(rec.s_transitions(), 1u);
  EXPECT_DOUBLE_EQ(rec.query_accuracy(), 0.0);
}

}  // namespace
}  // namespace chenfd::qos
