// Boundary-value tests for the shared rounding helpers (common/rounding.hpp)
// used by the freshness-point index arithmetic in fast_sim, analysis,
// chebyshev, config and nfd_s.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rounding.hpp"

namespace chenfd {
namespace {

TEST(CeilRatio, ExactAndFractionalRatios) {
  EXPECT_EQ(ceil_ratio(2.5, 1.0), 3);   // k = ceil(delta/eta), Theorem 5
  EXPECT_EQ(ceil_ratio(2.0, 1.0), 2);   // exact ratio must not round up
  EXPECT_EQ(ceil_ratio(0.0, 1.0), 0);
  EXPECT_EQ(ceil_ratio(1e-6, 1.0), 1);   // above the slack: ceils to 1
  EXPECT_EQ(ceil_ratio(1e-12, 1.0), 0);  // within the slack of 0: snaps
  EXPECT_EQ(ceil_ratio(30.0, 9.98), 4);
}

TEST(CeilRatio, SnapsRatiosOneUlpAboveAnInteger) {
  // 0.3 / 0.1 = 3.0000000000000004 in binary64; a plain ceil would give 4.
  EXPECT_EQ(ceil_ratio(0.3, 0.1), 3);
  // Same pattern at a larger magnitude: 3 * 1e6 ULP drift.
  EXPECT_EQ(ceil_ratio(std::nextafter(2.0, 3.0), 1.0), 2);
  // The slack is relative: at 2e6 it covers 2e-3, so a 1e-4 excess snaps
  // down while a 1e-2 excess is a genuine fraction and ceils.
  EXPECT_EQ(ceil_ratio(2'000'000.0 + 1e-4, 1.0), 2'000'000);
  EXPECT_EQ(ceil_ratio(2'000'000.0 + 1e-2, 1.0), 2'000'001);
}

TEST(CeilRatio, DoesNotSnapGenuineFractions) {
  // The slack is 1e-9 relative; a 1e-7 excess is a real fraction.
  EXPECT_EQ(ceil_ratio(2.0 + 1e-7, 1.0), 3);
}

TEST(CeilRatio, RejectsInvalidOperands) {
  EXPECT_THROW((void)ceil_ratio(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ceil_ratio(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ceil_ratio(1.0, -2.0), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)ceil_ratio(inf, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ceil_ratio(1.0, inf), std::invalid_argument);
}

TEST(FloorSnapped, PlainFloorAwayFromIntegers) {
  EXPECT_EQ(floor_snapped(2.9), 2.0);
  EXPECT_EQ(floor_snapped(2.1), 2.0);
  EXPECT_EQ(floor_snapped(0.4), 0.0);
  EXPECT_EQ(floor_snapped(-0.5), -1.0);
}

TEST(FloorSnapped, SnapsValuesOneUlpBelowAnInteger) {
  // The freshness-index bug class: t meant to be exactly tau_i computes to
  // one ULP below i and a plain floor misclassifies the instant itself.
  EXPECT_EQ(floor_snapped(std::nextafter(3.0, 0.0)), 3.0);
  EXPECT_EQ(floor_snapped(std::nextafter(1.0, 0.0)), 1.0);
  EXPECT_EQ(floor_snapped(1e6 - 1e-5), 1e6);  // relative slack scales
}

TEST(FloorSnapped, ExactIntegersPassThrough) {
  EXPECT_EQ(floor_snapped(5.0), 5.0);
  EXPECT_EQ(floor_snapped(0.0), 0.0);
  EXPECT_EQ(floor_snapped(-3.0), -3.0);
}

TEST(FloorSnapped, RejectsNonFinite) {
  EXPECT_THROW((void)floor_snapped(std::nan("")), std::invalid_argument);
  EXPECT_THROW(
      (void)floor_snapped(std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(FloorRatioSnapped, FreshnessIndexPattern) {
  // floor((t - delta) / eta) with eta = 0.1: binary64 division puts
  // 0.3 / 0.1 just below 3 on some operand patterns; snapping keeps the
  // index consistent with the schedule.
  EXPECT_EQ(floor_ratio_snapped(0.3, 0.1), 3.0);
  EXPECT_EQ(floor_ratio_snapped(0.35, 0.1), 3.0);
  EXPECT_EQ(floor_ratio_snapped(-0.05, 0.1), -1.0);  // before tau_0: negative
  EXPECT_EQ(floor_ratio_snapped(0.0, 0.1), 0.0);
}

TEST(FloorRatioSnapped, LargeDeltaSmallEta) {
  // delta >> eta is where the subtraction loses low bits (the PR 2 audit
  // find): an offset meant to be exactly 10^7 intervals must not come back
  // as 10^7 - 1.
  const double eta = 1e-3;
  const double offset = 1e7 * eta;  // 10000 seconds, inexact in binary64
  EXPECT_EQ(floor_ratio_snapped(offset, eta), 1e7);
}

TEST(FloorRatioSnapped, RejectsInvalidOperands) {
  EXPECT_THROW((void)floor_ratio_snapped(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(
      (void)floor_ratio_snapped(std::numeric_limits<double>::infinity(), 1.0),
      std::invalid_argument);
}

TEST(GridQuantization, FloorAndCeilOnExactBoundaries) {
  EXPECT_EQ(grid_floor(1.0, 0.125), 8u);
  EXPECT_EQ(grid_ceil(1.0, 0.125), 8u);  // exact multiple: floor == ceil
  EXPECT_EQ(grid_floor(0.0, 0.125), 0u);
  EXPECT_EQ(grid_ceil(0.0, 0.125), 0u);
}

TEST(GridQuantization, FractionsSplitFloorFromCeil) {
  EXPECT_EQ(grid_floor(1.01, 0.125), 8u);
  EXPECT_EQ(grid_ceil(1.01, 0.125), 9u);
  EXPECT_EQ(grid_floor(0.99, 0.125), 7u);
  EXPECT_EQ(grid_ceil(0.99, 0.125), 8u);
}

TEST(GridQuantization, DeliberatelyNotSnapped) {
  // Unlike ceil_ratio/floor_snapped these are plain quantizers: the timing
  // wheel uses grid_ceil for deadlines (snapping down could fire a deadline
  // a tick early, reordering the transition stream) and grid_floor for
  // "ticks fully elapsed" (snapping up would advance past a deadline whose
  // exact time has not been reached).  A ratio one ULP off an integer must
  // NOT snap: contrast ceil_ratio/floor_snapped above, which do.
  EXPECT_EQ(grid_ceil(std::nextafter(3.0, 4.0), 1.0), 4u);
  EXPECT_EQ(grid_floor(std::nextafter(3.0, 0.0), 1.0), 2u);
}

TEST(GridQuantization, RejectsInvalidOperands) {
  EXPECT_THROW((void)grid_floor(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)grid_floor(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)grid_ceil(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)grid_ceil(1.0, -1.0), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)grid_ceil(inf, 1.0), std::invalid_argument);
  EXPECT_THROW((void)grid_floor(1.0, inf), std::invalid_argument);
}

}  // namespace
}  // namespace chenfd
