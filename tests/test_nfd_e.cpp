// Behavioural tests of NFD-E (Section 6.3): NFD-U with the Eq. (6.3)
// expected-arrival-time estimate.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "clock/clock.hpp"
#include "core/nfd_e.hpp"
#include "core/nfd_e_math.hpp"
#include "sim/simulator.hpp"

namespace chenfd::core {
namespace {

constexpr double kEta = 1.0;

net::Message hb(net::SeqNo seq) {
  net::Message m;
  m.seq = seq;
  m.sent_real = TimePoint(kEta * static_cast<double>(seq));
  m.sender_timestamp = m.sent_real;
  return m;
}

struct Script {
  sim::Simulator sim;
  clk::OffsetClock q_clock;
  NfdE detector;
  std::vector<Transition> log;

  explicit Script(NfdEParams params, double q_skew = 0.0)
      : q_clock(Duration(q_skew)), detector(sim, q_clock, params) {
    detector.add_listener([this](const Transition& t) { log.push_back(t); });
    detector.activate();
  }

  void deliver(net::SeqNo seq, double real_at) {
    sim.at(TimePoint(real_at), [this, seq, real_at] {
      detector.on_heartbeat(hb(seq), TimePoint(real_at));
    });
  }

  void run_to(double t) { sim.run_until(TimePoint(t)); }
};

TEST(NfdE, ConstantDelaysGiveExactEstimate) {
  // With every delay exactly 0.2, the Eq. 6.3 estimate of EA_{l+1} is
  // exact: after m_i at i + 0.2, the deadline is (i+1) + 0.2 + alpha.
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 8});
  for (net::SeqNo i = 1; i <= 3; ++i) {
    s.deliver(i, static_cast<double>(i) + 0.2);
  }
  s.run_to(10.0);
  // T at 1.2; no m_4 -> suspect at EA_4 + alpha = 4.2 + 0.5 = 4.7.
  ASSERT_EQ(s.log.size(), 2u);
  EXPECT_EQ(s.log[0], (Transition{TimePoint(1.2), Verdict::kTrust}));
  EXPECT_EQ(s.log[1].to, Verdict::kSuspect);
  EXPECT_NEAR(s.log[1].at.seconds(), 4.7, 1e-9);
}

TEST(NfdE, EstimateAveragesJitter) {
  // Delays 0.1 and 0.3 alternating: normalized times average to +0.2.
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 8});
  s.deliver(1, 1.1);
  s.deliver(2, 2.3);
  s.deliver(3, 3.1);
  s.deliver(4, 4.3);
  s.run_to(20.0);
  // After m_4 the window holds normalized {0.1, 0.3, 0.1, 0.3}: estimate
  // EA_5 = 5.2, deadline 5.7.
  ASSERT_GE(s.log.size(), 2u);
  EXPECT_EQ(s.log.back().to, Verdict::kSuspect);
  EXPECT_NEAR(s.log.back().at.seconds(), 5.7, 1e-9);
}

TEST(NfdE, WindowEvictsOldObservations) {
  // Window of 2: only the last two arrivals shape the estimate.
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 2});
  s.deliver(1, 1.9);  // early outlier delay 0.9
  s.deliver(2, 2.1);
  s.deliver(3, 3.1);
  s.run_to(20.0);
  // After m_3, window = {m_2: 0.1, m_3: 0.1}: EA_4 = 4.1, deadline 4.6.
  EXPECT_EQ(s.log.back().to, Verdict::kSuspect);
  EXPECT_NEAR(s.log.back().at.seconds(), 4.6, 1e-9);
  EXPECT_EQ(s.detector.window_size(), 2u);
  EXPECT_EQ(s.detector.window_capacity(), 2u);
}

TEST(NfdE, SkewInvariance) {
  // Identical delivery schedule under two different q skews must produce
  // identical real-time transitions (Section 6: NFD-E needs no
  // synchronization).
  auto run_with_skew = [](double skew) {
    Script s(NfdEParams{Duration(kEta), Duration(0.5), 8}, skew);
    s.deliver(1, 1.15);
    s.deliver(2, 2.25);
    s.deliver(4, 4.05);  // m_3 lost
    s.run_to(12.0);
    return s.log;
  };
  const auto a = run_with_skew(0.0);
  const auto b = run_with_skew(1234.5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to, b[i].to);
    EXPECT_NEAR(a[i].at.seconds(), b[i].at.seconds(), 1e-9);
  }
}

TEST(NfdE, DuplicatesDoNotEnterWindow) {
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 8});
  s.deliver(1, 1.2);
  s.deliver(1, 1.4);
  s.run_to(1.5);
  EXPECT_EQ(s.detector.window_size(), 1u);
}

TEST(NfdE, OutOfOrderOldMessagesExcludedFromWindow) {
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 8});
  s.deliver(2, 2.1);
  s.deliver(1, 2.3);  // late m_1 would distort the estimate; excluded
  s.run_to(2.5);
  EXPECT_EQ(s.detector.window_size(), 1u);
}

TEST(NfdE, RebaseStartsNewEpoch) {
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 8});
  s.deliver(1, 1.2);
  s.deliver(2, 2.2);
  s.run_to(2.5);
  // New epoch: from m_3 on, heartbeats are sent every 2s starting at
  // sigma_3 = 4 (real).  Rebase clears the window.
  s.sim.at(TimePoint(2.6), [&s] {
    s.detector.rebase(NfdUParams{Duration(2.0), Duration(0.5)}, 3);
  });
  s.run_to(2.7);
  EXPECT_EQ(s.detector.window_size(), 0u);
  EXPECT_EQ(s.detector.epoch_seq(), 3u);
  // m_3 at 4.2, m_4 at 6.2 (delay 0.2 under the new schedule).
  s.deliver(3, 4.2);
  s.deliver(4, 6.2);
  s.run_to(20.0);
  // After m_4: EA_5 = 8.2, deadline 8.7.
  EXPECT_EQ(s.log.back().to, Verdict::kSuspect);
  EXPECT_NEAR(s.log.back().at.seconds(), 8.7, 1e-9);
}

TEST(NfdE, PreEpochMessagesIgnoredByWindow) {
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 8});
  s.sim.at(TimePoint(0.5), [&s] {
    s.detector.rebase(NfdUParams{Duration(kEta), Duration(0.5)}, 3);
  });
  s.deliver(1, 1.2);  // pre-epoch: not admitted to the window
  s.run_to(1.5);
  EXPECT_EQ(s.detector.window_size(), 0u);
}

TEST(NfdE, RejectsInvalidParams) {
  sim::Simulator sim;
  clk::SynchronizedClock clock;
  EXPECT_THROW(NfdE(sim, clock, NfdEParams{Duration(1.0), Duration(0.5), 0}),
               std::invalid_argument);
}

TEST(NfdE, ValidatesOwnParamsBeforeBaseDelegation) {
  // Regression: the ctor used to hand params to the NfdU base first and
  // validate the NfdEParams in its own body afterwards, so an invalid eta
  // surfaced as a "NfdUParams: ..." diagnostic (or, with a bad window, after
  // the base was already built).  Validation must run before delegation and
  // name the params type the caller actually passed.
  sim::Simulator sim;
  clk::SynchronizedClock clock;
  try {
    NfdE bad(sim, clock, NfdEParams{Duration(0.0), Duration(0.5), 8});
    FAIL() << "invalid eta must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("NfdEParams"), std::string::npos)
        << "diagnostic was: " << e.what();
  }
  try {
    NfdE bad(sim, clock, NfdEParams{Duration(1.0), Duration(0.5), 0});
    FAIL() << "zero window must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("NfdEParams"), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(NfdE, Eq63HelpersRejectPreconditionViolationsAsCallerErrors) {
  // Regression companion to the expected_arrival EXPECTS fix: the shared
  // Eq. 6.3 helpers treat an empty window / pre-epoch sequence number as a
  // *caller* error (invalid_argument), not an internal invariant breach
  // (logic_error) — callers asking for an estimate before any heartbeat was
  // admitted get the precondition diagnostic.
  EXPECT_THROW((void)eq63::estimate(0.0, 0, 2, 1, kEta),
               std::invalid_argument);  // empty window
  EXPECT_THROW((void)eq63::estimate(0.0, 3, 1, 2, kEta),
               std::invalid_argument);  // seq predates the epoch
  EXPECT_THROW((void)eq63::normalize(1.2, 1, 2, kEta),
               std::invalid_argument);  // seq predates the epoch
  // And the happy path matches the hand-derived Eq. 6.3 values.
  EXPECT_DOUBLE_EQ(eq63::normalize(1.2, 1, 0, kEta), 0.2);
  EXPECT_DOUBLE_EQ(eq63::estimate(0.4, 2, 3, 0, kEta), 3.2);
}

TEST(NfdE, RebaseRejectsInvalidParams) {
  Script s(NfdEParams{Duration(kEta), Duration(0.5), 8});
  s.deliver(1, 1.2);
  s.run_to(1.5);
  EXPECT_THROW(
      s.detector.rebase(NfdUParams{Duration(0.0), Duration(0.5)}, 2),
      std::invalid_argument);
  // The failed rebase must not have torn down the current epoch.
  EXPECT_EQ(s.detector.window_size(), 1u);
}

}  // namespace
}  // namespace chenfd::core
