// Wide-area monitoring with unsynchronized clocks and changing conditions
// (Sections 6 and 8 of the paper).
//
// q monitors p across a WAN.  The clocks are not synchronized (q's clock
// is minutes off), the delay distribution is unknown, and the network has
// a diurnal pattern: quiet nights, congested days.  The adaptive service
// estimates (p_L, V(D)) from the live heartbeat stream, reconfigures the
// NFD-E detector through the Section 6 procedure, and renegotiates the
// heartbeat rate with p as conditions change.
//
//   $ ./wan_adaptive

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/testbed.hpp"
#include "dist/lognormal.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"
#include "service/adaptive.hpp"
#include "service/registry.hpp"

int main() {
  using namespace chenfd;

  // Two applications share the detector: a group-membership service with
  // strict accuracy demands and a dashboard that wants fast detection.
  service::RelativeRequirementRegistry registry;
  registry.add(core::RelativeRequirements{
      seconds(60.0), hours(2.0), seconds(10.0)});  // membership
  registry.add(core::RelativeRequirements{
      seconds(15.0), minutes(10.0), seconds(10.0)});  // dashboard
  const auto sla = *registry.merged();
  std::cout << "Merged demands of " << registry.size()
            << " applications: T_D <= " << sla.detection_time_upper_rel
            << " + E(D), E(T_MR) >= " << sla.mistake_recurrence_lower
            << ", E(T_M) <= " << sla.mistake_duration_upper << "\n\n";

  // The WAN: lognormal delays (mean 80 ms at night), 0.5% loss; q's local
  // clock is 3 minutes ahead — irrelevant to NFD-E by design.
  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::LogNormal>(
      dist::LogNormal::with_moments(0.08, 0.002));
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.005);
  cfg.eta = seconds(2.0);
  cfg.q_clock_offset = minutes(3.0);
  cfg.seed = 77;
  core::Testbed tb(std::move(cfg));

  service::AdaptiveMonitor::Options opts;
  opts.requirements = sla;
  opts.initial = core::NfdEParams{seconds(2.0), seconds(2.0), 32};
  opts.reconfig_interval = minutes(2.0);
  service::AdaptiveMonitor monitor(tb.simulator(), tb.q_clock(), tb.sender(),
                                   opts);
  std::vector<Transition> log;
  monitor.add_listener([&log](const Transition& t) { log.push_back(t); });
  tb.attach(monitor);
  tb.start();

  const auto report = [&](const char* phase, double from, double to) {
    const auto rec = qos::replay(log, TimePoint(from), TimePoint(to));
    const auto p = monitor.current_params();
    std::cout << std::setw(18) << phase << "  eta=" << std::setw(7)
              << p.eta.seconds() << "  alpha=" << std::setw(7)
              << p.alpha.seconds()
              << "  T_D bound (rel)=" << std::setw(7)
              << monitor.relative_detection_bound().seconds()
              << "  P_A=" << rec.query_accuracy()
              << "  mistakes=" << rec.s_transitions() << "\n";
  };

  // Night: calm network.
  tb.simulator().run_until(TimePoint(4.0 * 3600.0));
  report("night (calm)", 600.0, 4.0 * 3600.0);

  // Morning: congestion sets in — delays triple, variance explodes, loss
  // quadruples.
  tb.link().set_delay(std::make_unique<dist::LogNormal>(
      dist::LogNormal::with_moments(0.25, 0.02)));
  tb.link().set_loss(std::make_unique<net::BernoulliLoss>(0.02));
  tb.simulator().run_until(TimePoint(12.0 * 3600.0));
  report("day (congested)", 5.0 * 3600.0, 12.0 * 3600.0);

  // Evening: conditions relax again.
  tb.link().set_delay(std::make_unique<dist::LogNormal>(
      dist::LogNormal::with_moments(0.08, 0.002)));
  tb.link().set_loss(std::make_unique<net::BernoulliLoss>(0.005));
  tb.simulator().run_until(TimePoint(20.0 * 3600.0));
  report("evening (calm)", 13.0 * 3600.0, 20.0 * 3600.0);

  std::cout << "\nRate renegotiations with p: " << monitor.reconfigurations()
            << "; QoS at risk: " << (monitor.qos_at_risk() ? "YES" : "no")
            << "\nEstimated network now: p_L ~ "
            << monitor.estimator().loss_probability() << ", V(D) ~ "
            << monitor.estimator().delay_variance() << " s^2\n";

  // Finally, p really crashes.
  const TimePoint crash = tb.simulator().now() + seconds(100.0);
  tb.crash_p_at(crash);
  tb.simulator().run_until(crash + minutes(5.0));
  std::cout << "\np crashed at t=" << crash.seconds() << " s; detected "
            << (log.back().at - crash).seconds()
            << " s later (relative bound eta + alpha = "
            << monitor.relative_detection_bound().seconds() << " s)\n";
  monitor.stop();
  return 0;
}
