// Quickstart: monitor a process with NFD-S and measure its QoS.
//
// Builds the two-process system of the paper — a heartbeat sender p, a
// lossy/delaying link, and the NFD-S failure detector at q — runs it
// failure-free to measure the accuracy metrics, then crashes p and
// measures the detection time.
//
//   $ ./quickstart

#include <iostream>
#include <memory>
#include <vector>

#include "core/analysis.hpp"
#include "core/nfd_s.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"

int main() {
  using namespace chenfd;

  // 1. Describe the network: 1% loss, exponential delays with mean 20 ms.
  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.01);
  cfg.eta = seconds(1.0);  // p sends a heartbeat every second
  cfg.seed = 1;
  core::Testbed tb(std::move(cfg));

  // 2. Create the detector: freshness points tau_i = sigma_i + delta.
  const core::NfdSParams params{seconds(1.0), seconds(1.5)};
  core::NfdS detector(tb.simulator(), params);
  tb.attach(detector);

  // 3. Record its output transitions.
  std::vector<Transition> log;
  detector.add_listener([&log](const Transition& t) { log.push_back(t); });

  // 4. Run failure-free for a while and measure the QoS.
  tb.start();
  tb.simulator().run_until(TimePoint(50000.0));
  const auto rec = qos::replay(log, TimePoint(100.0), TimePoint(50000.0));

  std::cout << "NFD-S with eta = " << params.eta << ", delta = " << params.delta
            << " over a 1%-loss link:\n"
            << "  mistakes observed:        " << rec.s_transitions() << "\n"
            << "  E(T_MR) measured:         " << rec.mistake_recurrence().mean()
            << " s\n"
            << "  E(T_M)  measured:         " << rec.mistake_duration().mean()
            << " s\n"
            << "  query accuracy P_A:       " << rec.query_accuracy() << "\n";

  // Compare with the closed-form prediction of Theorem 5.
  dist::Exponential delay(0.02);
  const core::NfdSAnalysis analysis(params, 0.01, delay);
  std::cout << "  E(T_MR) analytic (Thm 5): " << analysis.e_tmr().seconds()
            << " s\n"
            << "  P_A analytic:             " << analysis.query_accuracy()
            << "\n";

  // 5. Crash p and watch the detector converge within delta + eta.
  const TimePoint crash = tb.simulator().now() + seconds(17.3);
  tb.crash_p_at(crash);
  tb.simulator().run_until(crash + seconds(30.0));
  std::cout << "\np crashed at " << crash << "; final verdict: "
            << detector.output() << "\n"
            << "  detection time:  " << (log.back().at - crash).seconds()
            << " s (bound delta + eta = "
            << params.detection_time_bound().seconds() << " s)\n";
  detector.stop();
  return 0;
}
