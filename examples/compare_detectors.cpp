// Head-to-head comparison of NFD-S, NFD-E and the common algorithm on the
// SAME heartbeat deliveries — a miniature of the paper's Section 7 study.
//
// All four detectors attach to one testbed, so every loss and delay hits
// each of them identically (the coupling behind Theorem 6).  All are
// budgeted the same detection bound T_D^U and heartbeat rate.
//
//   $ ./compare_detectors

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/nfd_e.hpp"
#include "core/nfd_s.hpp"
#include "core/sfd.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"
#include "qos/replay.hpp"

int main() {
  using namespace chenfd;

  const double t_du = 2.5;  // common detection budget, in heartbeat periods
  const double horizon = 100000.0;

  core::Testbed::Config cfg;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.loss = std::make_unique<net::BernoulliLoss>(0.02);
  cfg.eta = seconds(1.0);
  cfg.seed = 20260707;
  core::Testbed tb(std::move(cfg));

  struct Entry {
    std::string name;
    std::unique_ptr<core::FailureDetector> det;
    std::vector<Transition> log;
  };
  std::vector<Entry> entries;
  entries.push_back({"NFD-S (delta=1.5)",
                     std::make_unique<core::NfdS>(
                         tb.simulator(),
                         core::NfdSParams{seconds(1.0), seconds(t_du - 1.0)}),
                     {}});
  entries.push_back(
      {"NFD-E (alpha=1.48, n=32)",
       std::make_unique<core::NfdE>(
           tb.simulator(), tb.q_clock(),
           core::NfdEParams{seconds(1.0), seconds(t_du - 1.02), 32}),
       {}});
  entries.push_back(
      {"SFD-L (c=0.16, TO=2.34)",
       std::make_unique<core::Sfd>(
           tb.simulator(), tb.q_clock(),
           core::SfdParams{seconds(t_du - 0.16), seconds(0.16)}),
       {}});
  entries.push_back(
      {"SFD-S (c=0.08, TO=2.42)",
       std::make_unique<core::Sfd>(
           tb.simulator(), tb.q_clock(),
           core::SfdParams{seconds(t_du - 0.08), seconds(0.08)}),
       {}});

  for (auto& e : entries) {
    tb.attach(*e.det);
    auto* log = &e.log;
    e.det->add_listener([log](const Transition& t) { log->push_back(t); });
  }
  tb.start();
  tb.simulator().run_until(TimePoint(horizon));

  std::cout << "Same link (p_L = 2%, Exp delays E(D) = 0.02 s), same "
               "heartbeats,\nsame detection budget T_D^U = "
            << t_du << " periods; " << horizon << " s failure-free run:\n\n";
  std::cout << std::left << std::setw(28) << "algorithm" << std::right
            << std::setw(12) << "mistakes" << std::setw(14) << "E(T_MR) s"
            << std::setw(12) << "E(T_M) s" << std::setw(12) << "P_A"
            << "\n"
            << std::string(78, '-') << "\n";
  for (auto& e : entries) {
    const auto rec =
        qos::replay(e.log, TimePoint(100.0), TimePoint(horizon));
    std::cout << std::left << std::setw(28) << e.name << std::right
              << std::setw(12) << rec.s_transitions() << std::setw(14)
              << std::setprecision(5) << rec.mistake_recurrence().mean()
              << std::setw(12) << rec.mistake_duration().mean()
              << std::setw(12) << std::setprecision(6)
              << rec.query_accuracy() << "\n";
  }

  std::cout << "\nNFD-S makes the fewest mistakes and has the best P_A — "
               "at identical\nnetwork cost and detection guarantee "
               "(Theorem 6 in action).\n";
  return 0;
}
