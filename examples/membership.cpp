// Group membership over the full failure detector mesh, with consensus on
// the new configuration — the application stack the paper's introduction
// motivates (group membership [5][9], cluster management [24], consensus
// [12]).
//
// Five replicas monitor each other (NFD-S on every ordered pair).  When a
// replica crashes, every survivor's view converges within the Theorem 5.1
// detection bound, and the survivors then run Chandra-Toueg consensus —
// driven by those same detectors — to agree on the next primary.
//
//   $ ./membership

#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "consensus/ct.hpp"
#include "dist/exponential.hpp"
#include "group/group.hpp"

namespace {

using namespace chenfd;

std::string show_view(const std::vector<group::ProcessId>& view) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < view.size(); ++i) {
    os << (i > 0 ? "," : "") << "r" << view[i];
  }
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  constexpr std::size_t kReplicas = 5;
  const core::NfdSParams fd_params{seconds(1.0), seconds(1.5)};

  group::Group::Config cfg;
  cfg.size = kReplicas;
  cfg.delay = std::make_unique<dist::Exponential>(0.02);
  cfg.p_loss = 0.01;
  cfg.detector = fd_params;
  cfg.seed = 31337;
  group::Group g(std::move(cfg));
  g.start();

  std::cout << "5 replicas, pairwise NFD-S (eta = 1 s, delta = 1.5 s => "
               "T_D <= 2.5 s per pair)\n\n";

  g.simulator().run_until(TimePoint(10.0));
  std::cout << "t = 10 s   views: ";
  for (group::ProcessId r = 0; r < kReplicas; ++r) {
    std::cout << "r" << r << "=" << show_view(g.view(r)) << " ";
  }
  std::cout << "\n           all correct members mutually trusted: "
            << (g.all_correct_trusted() ? "yes" : "no") << "\n";

  // Replica 1 — the current primary, say — crashes.
  const TimePoint crash(12.3);
  g.crash_at(1, crash);
  std::cout << "\nt = 12.3 s  replica 1 (primary) crashes\n";

  // Poll until every survivor has removed it from its view.
  double converged_at = 0.0;
  for (double t = 12.4; t < 20.0; t += 0.05) {
    g.simulator().run_until(TimePoint(t));
    if (g.all_crashes_detected()) {
      converged_at = t;
      break;
    }
  }
  std::cout << "t = " << converged_at
            << " s  every survivor suspects replica 1 (bound: crash + "
            << fd_params.detection_time_bound().seconds()
            << " s = " << crash.seconds() +
                   fd_params.detection_time_bound().seconds()
            << " s)\n           views now: ";
  for (group::ProcessId r = 0; r < kReplicas; ++r) {
    if (g.crashed(r)) continue;
    std::cout << "r" << r << "=" << show_view(g.view(r)) << " ";
  }
  std::cout << "\n";

  // The survivors agree on the next primary via consensus, using the very
  // same detectors as their suspicion oracle.  Each proposes the smallest
  // member of its own view.
  consensus::Transport transport(g.simulator(), kReplicas,
                                 std::make_unique<dist::Exponential>(0.02),
                                 0.0, 4242);
  transport.crash(1);
  std::vector<std::unique_ptr<consensus::CtProcess>> procs;
  for (group::ProcessId r = 0; r < kReplicas; ++r) {
    const auto view = g.view(r);
    const auto proposal = static_cast<std::int64_t>(view.front());
    procs.push_back(std::make_unique<consensus::CtProcess>(
        g.simulator(), transport, g, r, kReplicas, proposal));
  }
  const TimePoint vote_start = g.simulator().now();
  for (group::ProcessId r = 0; r < kReplicas; ++r) {
    if (!g.crashed(r)) procs[r]->start();
  }
  g.simulator().run_until(vote_start + seconds(60.0));

  std::cout << "\nConsensus on the new primary:\n";
  for (group::ProcessId r = 0; r < kReplicas; ++r) {
    if (g.crashed(r)) {
      std::cout << "  r" << r << ": (crashed)\n";
      continue;
    }
    if (procs[r]->decided()) {
      std::cout << "  r" << r << ": new primary = r" << procs[r]->decision()
                << "  (decided in round " << procs[r]->decided_round()
                << ", " << (procs[r]->decision_time() - vote_start).seconds()
                << " s after the vote began)\n";
    } else {
      std::cout << "  r" << r << ": undecided\n";
    }
  }
  g.stop();
  return 0;
}
