// Cluster management scenario (the paper's Section 4 worked example).
//
// A management node q watches a rack of worker nodes.  Operations hands us
// the SLA: crashes must be detected within 30 s, the pager must not fire
// more than once a month per node on false alarms, and any false alarm
// must clear within a minute.  The network team knows the link behaviour:
// 1% message loss, exponential delays averaging 20 ms.
//
// The Section 4 configurator turns the SLA into (eta, delta); we then
// monitor five workers, crash two of them, and report what the operator
// would see.
//
//   $ ./cluster_monitor

#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "core/analysis.hpp"
#include "core/config.hpp"
#include "core/nfd_s.hpp"
#include "core/testbed.hpp"
#include "dist/exponential.hpp"
#include "net/loss_model.hpp"

namespace {

using namespace chenfd;

struct Worker {
  std::string name;
  std::unique_ptr<core::Testbed> testbed;
  std::unique_ptr<core::NfdS> detector;
  std::optional<TimePoint> crashed_at;
  std::optional<TimePoint> detected_at;
};

}  // namespace

int main() {
  // The SLA, as QoS requirements (Section 4, Eq. 4.1).
  const qos::Requirements sla{
      seconds(30.0),   // T_D^U: detect within 30 s
      days(30.0),      // T_MR^L: at most ~one false alarm a month
      seconds(60.0)};  // T_M^U: false alarms clear within a minute

  dist::Exponential delay(0.02);
  const double p_loss = 0.01;

  const auto cfgout = core::configure_exact(sla, p_loss, delay);
  if (!cfgout.achievable()) {
    std::cerr << "SLA unachievable on this network: " << cfgout.reason
              << "\n";
    return 1;
  }
  const core::NfdSParams params = *cfgout.params;
  std::cout << "SLA -> NFD-S parameters: eta = " << params.eta.seconds()
            << " s, delta = " << params.delta.seconds() << " s\n"
            << "  (bandwidth: one heartbeat per worker every "
            << params.eta.seconds() << " s)\n";

  const core::NfdSAnalysis analysis(params, p_loss, delay);
  std::cout << "Predicted QoS (Theorem 5): E(T_MR) = "
            << analysis.e_tmr().seconds() / 86400.0 << " days, E(T_M) = "
            << analysis.e_tm().seconds() << " s, T_D <= "
            << analysis.detection_time_bound().seconds() << " s\n\n";

  // Monitor five workers; each worker gets its own link and detector.
  std::vector<Worker> workers;
  for (int i = 0; i < 5; ++i) {
    Worker w;
    w.name = "worker-" + std::to_string(i);
    core::Testbed::Config cfg;
    cfg.delay = delay.clone();
    cfg.loss = std::make_unique<net::BernoulliLoss>(p_loss);
    cfg.eta = params.eta;
    cfg.seed = 9000 + static_cast<std::uint64_t>(i);
    w.testbed = std::make_unique<core::Testbed>(std::move(cfg));
    w.detector = std::make_unique<core::NfdS>(w.testbed->simulator(), params);
    w.testbed->attach(*w.detector);
    workers.push_back(std::move(w));
  }
  for (auto& w : workers) {
    auto* wp = &w;
    w.detector->add_listener([wp](const Transition& t) {
      if (wp->crashed_at && t.to == Verdict::kSuspect &&
          !wp->detected_at) {
        wp->detected_at = t.at;
      }
    });
    w.testbed->start();
  }

  // Two workers die during the day.
  workers[1].crashed_at = TimePoint(3600.0 * 2 + 17.0);
  workers[3].crashed_at = TimePoint(3600.0 * 5 + 1042.5);
  for (auto& w : workers) {
    if (w.crashed_at) w.testbed->crash_p_at(*w.crashed_at);
  }

  // One simulated day.
  for (auto& w : workers) {
    w.testbed->simulator().run_until(TimePoint(86400.0));
  }

  std::cout << "After one simulated day:\n";
  for (const auto& w : workers) {
    std::cout << "  " << w.name << ": ";
    if (w.crashed_at) {
      const double t_d = (*w.detected_at - *w.crashed_at).seconds();
      std::cout << "CRASHED at t=" << w.crashed_at->seconds()
                << " s, detected " << t_d << " s later (SLA: "
                << sla.detection_time_upper.seconds() << " s) "
                << (t_d <= sla.detection_time_upper.seconds() ? "[OK]"
                                                              : "[VIOLATED]")
                << "\n";
    } else {
      std::cout << "healthy, current verdict: " << w.detector->output()
                << "\n";
    }
  }

  for (auto& w : workers) w.detector->stop();
  return 0;
}
